"""Compiled-schedule cache: keying discipline, hit/miss flow through
``exec_compiled_cell``, corrupt-entry recovery, and the executor-level
equivalence of compiled sweeps."""

import json

import pytest

from repro.bench.cache import descriptor_key
from repro.bench.compiled import (
    CompiledScheduleCache,
    capture_schedule,
    clear_schedule_memo,
    exec_compiled_cell,
    schedule_descriptor,
)
from repro.bench.executor import cell_descriptor, run_sweep_table
from repro.bench.spec import reduce_spec


@pytest.fixture(autouse=True)
def _fresh_memo():
    """The in-process schedule memo survives across tests (by design:
    it survives across cells); cache-behavior tests need it empty."""
    clear_schedule_memo()
    yield
    clear_schedule_memo()


def _cell(**over):
    cell = {
        "machine": "NodeA",
        "p": 4,
        "nbytes": 65536,
        "runner": reduce_spec("socket-ma", "allreduce",
                              "adaptive").describe(),
    }
    cell.update(over)
    return cell


def _payload(results_dir=None, **over):
    payload = dict(_cell(**over), type="cell", compiled=True)
    if results_dir is not None:
        payload["results_dir"] = str(results_dir)
    return payload


class TestScheduleDescriptor:
    def test_schema_tag(self):
        assert schedule_descriptor(_cell())["schema"] == "repro-compiled/1"

    @pytest.mark.parametrize("over", [
        {"p": 8},
        {"nbytes": 4096},
        {"machine": "NodeB"},
        {"runner": reduce_spec("ring", "allreduce").describe()},
    ])
    def test_geometry_changes_the_key(self, over):
        base = descriptor_key(schedule_descriptor(_cell()))
        assert descriptor_key(schedule_descriptor(_cell(**over))) != base

    def test_source_version_changes_the_key(self, monkeypatch):
        base = descriptor_key(schedule_descriptor(_cell()))
        monkeypatch.setattr("repro.bench.compiled.source_version",
                            lambda: "0" * 64)
        assert descriptor_key(schedule_descriptor(_cell())) != base

    def test_distinct_from_result_cache_key(self):
        # schedules and results must never collide in a shared store
        cell = _cell()
        assert descriptor_key(schedule_descriptor(cell)) != \
            descriptor_key(cell_descriptor(cell, compiled=True))

    def test_compiled_results_key_separately_from_coroutine(self):
        cell = _cell()
        assert descriptor_key(cell_descriptor(cell)) != \
            descriptor_key(cell_descriptor(cell, compiled=True))


class TestExecCompiledCell:
    def test_capture_once_then_replay_from_cache(self, tmp_path,
                                                 monkeypatch):
        captures = []
        real = capture_schedule

        def counting(*a, **kw):
            captures.append(a)
            return real(*a, **kw)

        monkeypatch.setattr("repro.bench.compiled.capture_schedule",
                            counting)
        first = exec_compiled_cell(_payload(tmp_path))
        assert len(captures) == 1
        assert first.pop("captured") is True  # transient run artifact
        second = exec_compiled_cell(_payload(tmp_path))
        assert len(captures) == 1, "second call must be pure replay"
        assert "captured" not in second
        assert second == first

    def test_no_results_dir_still_works(self):
        out = exec_compiled_cell(_payload())
        assert out["time"] > 0 and out["counters"] is not None

    def test_corrupt_entry_recaptured(self, tmp_path):
        exec_compiled_cell(_payload(tmp_path))
        key = descriptor_key(schedule_descriptor(_cell()))
        path = tmp_path / "compiled" / key[:2] / f"{key}.json"
        assert path.exists()
        entry = json.loads(path.read_text())
        entry["result"]["schema"] = "repro-compiled/0"  # stale schema
        path.write_text(json.dumps(entry))
        # the memo would mask the corruption (that's its job); drop it
        # to force the disk read
        clear_schedule_memo()
        out = exec_compiled_cell(_payload(tmp_path))
        assert out["time"] > 0
        # the recapture repaired the entry on disk
        repaired = json.loads(path.read_text())
        assert repaired["result"]["schema"] == "repro-compiled/1"

    def test_matches_coroutine_cell(self, tmp_path):
        from repro.bench.executor import exec_payload

        ref = exec_payload(dict(_cell(), type="cell"))
        out = exec_compiled_cell(_payload(tmp_path))
        out.pop("captured", None)  # run artifact, not cell result
        assert out == ref


MB = 1024 * 1024


def _poly_cell(nbytes, **over):
    """NodeA p=8 adaptive allreduce with imax=4MB: the NT threshold
    sits at (C - p*imax)/(2p) ≈ 14.25MB, so 8/12MB share a decision
    region and 16MB flips the ``nt`` guard."""
    return _cell(
        p=8, nbytes=nbytes,
        runner=reduce_spec("socket-ma", "allreduce", "adaptive",
                           imax=4 * MB).describe(),
        **over)


class TestSizePolymorphic:
    def test_same_guards_share_the_schedule_key(self):
        from repro.bench.compiled import cell_guards

        a, b = _poly_cell(8 * MB), _poly_cell(12 * MB)
        assert cell_guards(a) == cell_guards(b)
        assert descriptor_key(schedule_descriptor(a, poly=True)) == \
            descriptor_key(schedule_descriptor(b, poly=True))
        # exact-mode keys still distinguish the sizes
        assert descriptor_key(schedule_descriptor(a)) != \
            descriptor_key(schedule_descriptor(b))

    def test_guard_flip_changes_the_key(self):
        from repro.bench.compiled import cell_guards

        a, c = _poly_cell(8 * MB), _poly_cell(16 * MB)
        ga, gc = cell_guards(a), cell_guards(c)
        assert ga["nt"] is False and gc["nt"] is True
        assert descriptor_key(schedule_descriptor(a, poly=True)) != \
            descriptor_key(schedule_descriptor(c, poly=True))

    def test_one_capture_serves_the_region(self, tmp_path, monkeypatch):
        captures = []
        real = capture_schedule

        def counting(*a, **kw):
            captures.append(a)
            return real(*a, **kw)

        monkeypatch.setattr("repro.bench.compiled.capture_schedule",
                            counting)
        first = exec_compiled_cell(
            dict(_poly_cell(8 * MB), type="cell", compiled=True,
                 poly=True, results_dir=str(tmp_path)))
        second = exec_compiled_cell(
            dict(_poly_cell(12 * MB), type="cell", compiled=True,
                 poly=True, results_dir=str(tmp_path)))
        third = exec_compiled_cell(
            dict(_poly_cell(16 * MB), type="cell", compiled=True,
                 poly=True, results_dir=str(tmp_path)))
        assert len(captures) == 2  # 8MB region + 16MB (NT flip) region
        assert first["poly"]["retimed"] is False
        assert second["poly"]["retimed"] is True
        assert third["poly"]["retimed"] is False
        assert first["poly"]["region"] == second["poly"]["region"]
        assert third["poly"]["region"] != first["poly"]["region"]

    def test_exact_at_captured_size_matches_coroutine(self, tmp_path):
        from repro.bench.executor import exec_payload

        cell = _poly_cell(8 * MB)
        ref = exec_payload(dict(cell, type="cell"))
        out = exec_compiled_cell(
            dict(cell, type="cell", compiled=True, poly=True,
                 results_dir=str(tmp_path)))
        out.pop("captured", None)
        # the full content-addressed key, never a truncation (a
        # truncated key can collide across regions)
        assert out.pop("poly") == {
            "region": descriptor_key(schedule_descriptor(cell, poly=True)),
            "retimed": False,
        }
        assert out == ref

    def test_retimed_result_scales_dav(self, tmp_path):
        a = exec_compiled_cell(
            dict(_poly_cell(8 * MB), type="cell", compiled=True,
                 poly=True, results_dir=str(tmp_path)))
        b = exec_compiled_cell(
            dict(_poly_cell(12 * MB), type="cell", compiled=True,
                 poly=True, results_dir=str(tmp_path)))
        assert b["poly"]["retimed"] is True
        assert b["dav"] == round(a["dav"] * 1.5)
        assert b["time"] > 0


class TestCertifiedPoly:
    """``--compiled --poly --certified``: region certificates make
    retimed cells engine-exact in DAV/footprints."""

    KB = 1024

    def _cert_cell(self, nbytes, **over):
        # small sizes: certification captures five engine runs
        return dict(_cell(p=2, nbytes=nbytes), type="cell",
                    compiled=True, poly=True, certified=True, **over)

    def test_retimed_cell_gets_engine_exact_dav(self, tmp_path):
        from repro.bench.executor import exec_payload

        base = self._cert_cell(8 * self.KB, results_dir=str(tmp_path))
        exec_compiled_cell(base)
        # 7936 = 8192 - 256 (the p=2 region modulus): same region
        # (8448 would cross the 8 KB DPML block boundary), different
        # size -> retimed, and certification makes the DAV exact
        # rather than round(8192-dav * 7936/8192)
        out = exec_compiled_cell(
            self._cert_cell(7936, results_dir=str(tmp_path)))
        assert out["poly"]["retimed"] is True
        assert out["poly"]["certified"] is True
        assert out["poly"]["cert"]["dav"].endswith("*s")
        ref = exec_payload(dict(_cell(p=2, nbytes=7936), type="cell"))
        assert out["dav"] == ref["dav"]

    def test_exact_replay_annotated_not_changed(self, tmp_path):
        from repro.bench.executor import exec_payload

        cell = self._cert_cell(8 * self.KB, results_dir=str(tmp_path))
        out = exec_compiled_cell(cell)
        assert out["poly"]["retimed"] is False
        assert out["poly"]["certified"] is True
        ref = exec_payload(dict(_cell(p=2, nbytes=8 * self.KB),
                                type="cell"))
        out.pop("captured", None)
        out.pop("poly")
        assert out == ref  # bitwise replay untouched by the cert

    def test_certificate_cached_and_memoized(self, tmp_path,
                                             monkeypatch):
        import repro.analysis.static.symbolic as symbolic

        calls = []
        real = symbolic.certify_region

        def counting(*a, **kw):
            calls.append(a)
            return real(*a, **kw)

        monkeypatch.setattr(symbolic, "certify_region", counting)
        exec_compiled_cell(
            self._cert_cell(8 * self.KB, results_dir=str(tmp_path)))
        exec_compiled_cell(
            self._cert_cell(7936, results_dir=str(tmp_path)))
        assert len(calls) == 1, "one certification per region"
        # a fresh process (memo dropped) reads the cert from disk
        clear_schedule_memo()
        exec_compiled_cell(
            self._cert_cell(7936, results_dir=str(tmp_path)))
        assert len(calls) == 1

    def test_uncertifiable_region_reports_never_silent(self, tmp_path,
                                                       monkeypatch):
        import repro.analysis.static.symbolic as symbolic
        from repro.analysis.static.report import Finding, Report

        def failing(spec, machine, p, base, **kw):
            report = Report(case="forced failure")
            report.extend("sym-certify", [Finding(
                code="SA-SYM-SHAPE", severity="error",
                message="forced", pass_name="sym-certify",
                case="forced failure")])
            return None, report

        monkeypatch.setattr(symbolic, "certify_region", failing)
        out = exec_compiled_cell(
            self._cert_cell(7936, results_dir=str(tmp_path)))
        assert out["poly"]["certified"] is False
        assert out["poly"]["cert_errors"] == ["SA-SYM-SHAPE"]
        assert out["time"] > 0  # fell back to plain retiming

    def test_outside_certified_span_refuses(self, tmp_path,
                                            monkeypatch):
        # affinity is only proven between the endpoint-checked anchors
        # (per-op shape can flip past them, e.g. at the non-temporal
        # threshold), so a retime beyond the span must fall back to
        # model retiming and say why — never extrapolate
        import repro.bench.compiled as bc

        real = bc._load_certificate

        def narrowed(payload, cs):
            cert, codes = real(payload, cs)
            if cert is not None:
                cert.lo = cert.hi = 8 * self.KB  # shrink to the base
            return cert, codes

        monkeypatch.setattr(bc, "_load_certificate", narrowed)
        exec_compiled_cell(
            self._cert_cell(8 * self.KB, results_dir=str(tmp_path)))
        out = exec_compiled_cell(
            self._cert_cell(7936, results_dir=str(tmp_path)))
        assert out["poly"]["retimed"] is True
        assert out["poly"]["certified"] is False
        assert any("outside the certified span" in e
                   for e in out["poly"]["cert_errors"])
        assert out["time"] > 0

    def test_certified_results_key_separately(self):
        cell = _cell()
        assert descriptor_key(
            cell_descriptor(cell, compiled=True, poly=True)) != \
            descriptor_key(cell_descriptor(cell, compiled=True,
                                           poly=True, certified=True))


class TestScheduleMemo:
    def test_memo_serves_repeat_calls_without_results_dir(self,
                                                          monkeypatch):
        captures = []
        real = capture_schedule

        def counting(*a, **kw):
            captures.append(a)
            return real(*a, **kw)

        monkeypatch.setattr("repro.bench.compiled.capture_schedule",
                            counting)
        first = exec_compiled_cell(_payload())
        second = exec_compiled_cell(_payload())
        assert len(captures) == 1, \
            "memo must cover the cache-less (--no-cache) path"
        first.pop("captured", None)
        assert second == first

    def test_memo_capped(self):
        from repro.bench import compiled as mod

        clear_schedule_memo()
        for i in range(mod._MEMO_CAP + 5):
            mod._memo_put(("", f"k{i}"), object())
        assert len(mod._SCHEDULE_MEMO) == mod._MEMO_CAP
        assert ("", "k0") not in mod._SCHEDULE_MEMO  # oldest evicted


class TestAtomicPut:
    def test_no_shared_tmp_name_collision(self, tmp_path):
        # two caches writing the same key concurrently must never
        # interleave: each writer owns a unique temp file
        import threading

        from repro.bench.cache import ResultCache

        caches = [ResultCache(tmp_path) for _ in range(4)]
        key = "ab" + "0" * 62
        payload = {"v": list(range(500))}
        errors = []

        def writer(c):
            try:
                for _ in range(50):
                    c.put(key, {"d": 1}, payload)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(c,))
                   for c in caches]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert caches[0].get(key) == payload  # intact, complete JSON
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []


class TestCompiledSweep:
    def test_table_identical_to_coroutine(self, tmp_path, tiny_sweep):
        ref = run_sweep_table(tiny_sweep)
        out = run_sweep_table(tiny_sweep, compiled=True,
                              results_dir=tmp_path)
        assert out.to_json() == ref.to_json()

    def test_schedules_persist_without_result_cache(self, tmp_path,
                                                    tiny_sweep):
        # --no-cache disables the *result* cache only: schedules still
        # persist, which is what makes re-simulation pure replay
        run_sweep_table(tiny_sweep, cache=None, compiled=True,
                        results_dir=tmp_path)
        stored = list((tmp_path / "compiled").rglob("*.json"))
        assert len(stored) == 4  # one schedule per sweep cell

    def test_poly_table_on_distinct_regions_matches_coroutine(
            self, tmp_path, tiny_sweep):
        # the tiny sweep's sizes sit in different decision regions
        # (their 8KB-block counts differ), so every poly cell replays
        # exactly — the table must equal the coroutine one apart from
        # the poly provenance note
        ref = run_sweep_table(tiny_sweep)
        out = run_sweep_table(tiny_sweep, compiled=True, poly=True,
                              results_dir=tmp_path)
        assert any("0 model-retimed" in n for n in out.notes)
        out.notes = []
        assert out.to_json() == ref.to_json()

    def test_perturb_stats_attach_and_are_deterministic(
            self, tmp_path, tiny_sweep):
        pb = {"n": 16, "model": "mixed", "seed": 9}
        a = run_sweep_table(tiny_sweep, compiled=True, perturb=pb,
                            results_dir=tmp_path)
        clear_schedule_memo()
        b = run_sweep_table(tiny_sweep, compiled=True, perturb=pb,
                            results_dir=tmp_path)
        assert a.to_json() == b.to_json()
        for impl in a.impls():
            for s in a.sizes:
                stats = a.perturb[impl][s]
                assert stats["n"] == 16
                assert stats["base"] <= stats["p50"] <= stats["p999"]
        # distinct cells perturb distinct streams
        impl = a.impls()[0]
        s0, s1 = a.sizes[:2]
        assert a.perturb[impl][s0]["p99"] != a.perturb[impl][s1]["p99"]
        assert "perturb" in a.to_json()["impls"][impl]

    def test_perturb_requires_no_poly_and_composes_with_it(
            self, tmp_path, tiny_sweep):
        pb = {"n": 8, "model": "os-noise", "seed": 1}
        out = run_sweep_table(tiny_sweep, compiled=True, poly=True,
                              perturb=pb, results_dir=tmp_path)
        for impl in out.impls():
            assert set(out.perturb[impl]) == set(out.sizes)

    def test_poly_and_perturb_results_key_separately(self):
        cell = _cell()
        keys = {
            descriptor_key(cell_descriptor(cell, compiled=True)),
            descriptor_key(cell_descriptor(cell, compiled=True,
                                           poly=True)),
            descriptor_key(cell_descriptor(
                cell, compiled=True,
                perturb={"n": 4, "model": "mixed", "seed": 1})),
        }
        assert len(keys) == 3

    def test_schedule_cache_stats(self, tmp_path):
        cache = CompiledScheduleCache(tmp_path / "compiled")
        assert cache.stats() == "0/0 schedules from cache"
