"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.machine.spec import CacheSpec, MachineSpec, SocketSpec, GB_S, KB, MB, US
from repro.sim.engine import Engine

#: A small 2-socket machine for fast timing tests: 4 cores/socket,
#: 1 MB L3 + 64 KB L2 per core, modest bandwidths.
TINY = MachineSpec(
    name="Tiny",
    sockets=2,
    socket=SocketSpec(
        cores=4,
        l2_per_core=CacheSpec(size=64 * KB, inclusive=True),
        l3=CacheSpec(size=1 * MB, inclusive=False),
        mem_bandwidth=10.0 * GB_S,
    ),
    cache_bandwidth_core=20.0 * GB_S,
    numa_bandwidth=6.0 * GB_S,
    sync_latency_intra=0.2 * US,
    sync_latency_inter=0.5 * US,
    memmove_nt_threshold=256 * KB,
)


@pytest.fixture
def tiny_machine() -> MachineSpec:
    return TINY


@pytest.fixture
def engine4() -> Engine:
    """4 functional ranks, no machine model."""
    return Engine(4, functional=True)


@pytest.fixture
def engine8_timed() -> Engine:
    """8 ranks on the tiny machine, functional + timed."""
    return Engine(8, machine=TINY, functional=True)


def make_engine(nranks: int, *, machine=None, functional=True, **kw) -> Engine:
    return Engine(nranks, machine=machine, functional=functional, **kw)
