"""Communicator tests."""

import numpy as np
import pytest

from repro.library.communicator import Communicator

from tests.conftest import TINY


class TestCommunicator:
    def test_default_functional_without_machine(self):
        comm = Communicator(4)
        assert comm.functional and comm.machine is None

    def test_default_timing_with_machine(self):
        comm = Communicator(8, machine=TINY)
        assert not comm.functional

    def test_explicit_functional_with_machine(self):
        comm = Communicator(8, machine=TINY, functional=True)
        assert comm.functional and comm.machine is TINY

    def test_socket_of(self):
        comm = Communicator(8, machine=TINY)
        assert comm.socket_of(0) == 0 and comm.socket_of(7) == 1

    def test_socket_of_without_machine(self):
        assert Communicator(4).socket_of(3) == 0

    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            Communicator(9, machine=TINY)

    def test_reset_caches(self):
        comm = Communicator(8, machine=TINY)
        buf = comm.engine.alloc(0, 1024)
        comm.engine.memsys.load(0, buf, 0, 1024)
        assert comm.engine.memsys.caches[0].used_bytes > 0
        comm.reset_caches()
        assert comm.engine.memsys.caches[0].used_bytes == 0

    def test_dtype_flows_to_buffers(self):
        comm = Communicator(2, dtype=np.float32)
        buf = comm.engine.alloc(0, 64, fill=1.0)
        assert buf.array().dtype == np.float32
