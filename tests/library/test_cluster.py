"""Composed cluster simulation tests: skew propagation, absorption and
consistency with the analytic multi-node model."""

import pytest

from repro.library.communicator import Communicator
from repro.library.multinode import MultiNodeAllreduce
from repro.library.cluster import ClusterAllreduce

from tests.conftest import TINY

KB = 1024
MB = 1 << 20


@pytest.fixture(scope="module")
def cluster():
    return ClusterAllreduce(TINY, nnodes=4, ranks_per_node=8)


class TestBasics:
    def test_single_node(self):
        c = ClusterAllreduce(TINY, nnodes=1, ranks_per_node=8)
        res = c.run(1 * MB)
        assert res.time > 0
        assert len(res.nodes) == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ClusterAllreduce(TINY, nnodes=0, ranks_per_node=8)

    def test_rejects_bad_skews(self, cluster):
        with pytest.raises(ValueError, match="skews"):
            cluster.run(1 * MB, skews=[0.0])
        with pytest.raises(ValueError, match="non-negative"):
            cluster.run(1 * MB, skews=[0, 0, 0, -1e-3])

    def test_result_fields(self, cluster):
        res = cluster.run(1 * MB)
        for n in res.nodes:
            assert n.rs_done <= n.exchange_done <= n.finish
        assert res.time == max(n.finish for n in res.nodes)


class TestSkew:
    def test_straggler_delays_everyone(self, cluster):
        base = cluster.run(1 * MB)
        skewed = cluster.run(1 * MB, skews=[5e-3, 0, 0, 0])
        assert skewed.time > base.time
        # ring gating: the whole exchange waits for the straggler
        assert skewed.time == pytest.approx(base.time + 5e-3, rel=1e-6)

    def test_ring_resynchronizes(self, cluster):
        """All nodes leave the exchange together: skew fully absorbed
        into a common delay (spread -> 0)."""
        res = cluster.run(1 * MB, skews=[5e-3, 1e-3, 0, 2e-3])
        finishes = [n.finish for n in res.nodes]
        assert max(finishes) == pytest.approx(min(finishes))
        assert res.skew_absorbed() == pytest.approx(1.0)

    def test_no_skew_absorption_is_one(self, cluster):
        assert cluster.run(1 * MB).skew_absorbed() == 1.0

    def test_straggler_penalty_linear(self, cluster):
        p1 = cluster.straggler_penalty(1 * MB, 1e-3)
        p5 = cluster.straggler_penalty(1 * MB, 5e-3)
        assert p1 == pytest.approx(1e-3, rel=1e-6)
        assert p5 == pytest.approx(5e-3, rel=1e-6)


class TestConsistencyWithAnalyticModel:
    def test_matches_serial_multinode_within_factor(self):
        """No skew: the composed run lands near the analytic serial
        composition (same phases, same network)."""
        nbytes = 4 * MB
        cluster = ClusterAllreduce(TINY, nnodes=4, ranks_per_node=8)
        composed = cluster.run(nbytes).time
        comm = Communicator(8, machine=TINY, functional=False)
        analytic = MultiNodeAllreduce(
            comm, 4, implementation="YHCCL", pipelined=False
        ).allreduce(nbytes).time
        assert composed == pytest.approx(analytic, rel=0.35)
