"""YHCCL library facade tests."""

import pytest

from repro.library.communicator import Communicator
from repro.library.yhccl import YHCCL, CollectiveResult
from repro.collectives.switching import YHCCLConfig

from tests.conftest import TINY

KB = 1024
MB = 1024 * KB


@pytest.fixture
def lib():
    return YHCCL(Communicator(8, machine=TINY, functional=False))


class TestAPI:
    def test_allreduce_result_fields(self, lib):
        r = lib.allreduce(1 * MB)
        assert isinstance(r, CollectiveResult)
        assert r.kind == "allreduce" and r.nbytes == 1 * MB
        assert r.time > 0 and r.dav > 0
        assert r.algorithm == "socket-ma-allreduce"
        assert r.time_us == pytest.approx(r.time * 1e6)
        assert r.dab == pytest.approx(r.dav / r.time)

    def test_dab_zero_time_is_zero_not_inf(self):
        r = CollectiveResult(kind="allreduce", nbytes=0, time=0.0, dav=0,
                             memory_traffic=0, sync_count=0,
                             algorithm="ma", copy_policy="memmove")
        assert r.dab == 0.0

    def test_all_five_collectives(self, lib):
        for call in (lib.allreduce, lib.reduce_scatter, lib.bcast,
                     lib.allgather):
            assert call(64 * KB).time > 0
        assert lib.reduce(64 * KB, root=3).time > 0

    def test_small_message_routing(self, lib):
        r = lib.allreduce(16 * KB)
        assert r.algorithm == "dpml2-allreduce"

    def test_priority_zero_rejected(self):
        comm = Communicator(4, machine=TINY, functional=False)
        with pytest.raises(ValueError, match="priority"):
            YHCCL(comm, priority=0)

    def test_functional_mode_verifies(self):
        comm = Communicator(4, machine=TINY, functional=True)
        lib = YHCCL(comm)
        # run_* helpers verify against numpy oracles internally
        lib.allreduce(8 * KB)
        lib.reduce(8 * KB)
        lib.bcast(8 * KB)
        lib.allgather(8 * KB)
        lib.reduce_scatter(8 * KB)

    def test_custom_config(self):
        comm = Communicator(8, machine=TINY, functional=False)
        lib = YHCCL(comm, config=YHCCLConfig(socket_aware=False,
                                             adaptive_copy=False))
        r = lib.allreduce(1 * MB)
        assert r.algorithm == "ma-allreduce"
        assert r.copy_policy == "t"

    def test_ops_parameter(self):
        comm = Communicator(4, machine=TINY, functional=True)
        lib = YHCCL(comm)
        lib.allreduce(8 * KB, op="max")
        lib.reduce(8 * KB, op="min")

    def test_platform_imax(self):
        from repro.machine import NODE_A, NODE_B
        from repro.library.yhccl import _platform_imax

        assert _platform_imax(Communicator(4, machine=NODE_A,
                                           functional=False)) == 256 * KB
        assert _platform_imax(Communicator(4, machine=NODE_B,
                                           functional=False)) == 128 * KB


class TestAdaptiveBehaviourThroughFacade:
    def test_adaptive_beats_plain_t_on_large(self):
        comm = Communicator(8, machine=TINY, functional=False)
        adaptive = YHCCL(comm).allreduce(4 * MB).time
        comm2 = Communicator(8, machine=TINY, functional=False)
        plain = YHCCL(
            comm2, config=YHCCLConfig(adaptive_copy=False)
        ).allreduce(4 * MB).time
        assert adaptive < plain
