"""Composable hierarchy framework tests: stage composition, the
estimate/commit counter discipline, pipeline accounting, topology
assembly and equivalence with the multinode facade."""

import pytest

from repro.library.communicator import Communicator
from repro.library.hierarchy import (
    BestOfStage,
    GroupedLeafStage,
    Hierarchy,
    LeafStage,
    RabenseifnerStage,
    RingStage,
    SizeSwitchStage,
    TreeAllreduceStage,
    allreduce_stages,
    ceil_div,
    hierarchy_for_topology,
    vendor_network_stage,
)
from repro.library.multinode import MultiNodeAllreduce
from repro.library.yhccl import YHCCL
from repro.machine.network import Network, NodeGroup, Topology

from tests.conftest import TINY

KB = 1024
MB = 1024 * KB


class FakeLeafResult:
    def __init__(self, time, dav=0, algorithm="fake"):
        self.time = time
        self.dav = dav
        self.algorithm = algorithm


def const_leaf(name, time, dav=0):
    return LeafStage(name, lambda n: FakeLeafResult(time, dav))


class TestCeilDiv:
    def test_exact_and_remainder(self):
        assert ceil_div(8, 4) == 2
        assert ceil_div(9, 4) == 3
        assert ceil_div(1, 8) == 1
        assert ceil_div(0, 8) == 0


class TestLeafStage:
    def test_reports_leaf_metrics(self):
        stage = const_leaf("rs", 2.0, dav=100)
        res = stage.evaluate(1 * MB)
        assert res.time == 2.0 and res.dav == 100
        assert res.level == "intra"
        assert res.bytes_on_wire == 0 and res.messages == 0

    def test_sizer_maps_message_size(self):
        seen = []

        def op(n):
            seen.append(n)
            return FakeLeafResult(1.0)

        stage = LeafStage("ag", op, sizer=lambda n: ceil_div(n, 8))
        stage.evaluate(100)
        assert seen == [13]

    def test_chunk_time_divides_total(self):
        res = const_leaf("rs", 4.0).evaluate(1 * MB, chunks=4)
        assert res.time == 4.0 and res.chunk_time == 1.0


class TestGroupedLeafStage:
    def test_slowest_group_gates_bytes_sum(self):
        grouped = GroupedLeafStage("rs", [
            const_leaf("rs@A", 2.0, dav=10),
            const_leaf("rs@B", 5.0, dav=7),
        ])
        res = grouped.evaluate(1 * MB)
        assert res.time == 5.0
        assert res.dav == 17

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GroupedLeafStage("rs", [])


class TestNetworkStages:
    def test_ring_commit_matches_cost(self):
        net = Network()
        stage = RingStage(net, 8, lanes=8)
        res = stage.evaluate(1 * MB)
        assert net.bytes_sent == 0  # evaluation is pure
        stage.commit(res)
        cost = net.ring_allreduce_cost(1 * MB, 8, concurrent_procs=8)
        assert net.bytes_sent == cost.bytes_on_wire
        assert net.messages == cost.messages

    def test_chunked_evaluation_scales_latency_and_messages(self):
        net = Network()
        stage = RingStage(net, 8, lanes=8)
        whole = stage.evaluate(4 * MB)
        chunked = stage.evaluate(4 * MB, chunks=4)
        per = net.ring_allreduce_cost(1 * MB, 8, concurrent_procs=8)
        assert chunked.chunk_time == per.time
        assert chunked.time == per.time * 4
        assert chunked.messages == whole.messages * 4
        # chunking pays the per-step latency once per chunk
        assert chunked.time > whole.time

    def test_best_of_commits_only_the_winner(self):
        net = Network()
        tree = TreeAllreduceStage(net, 16)
        ring = RingStage(net, 16, lanes=1)
        best = BestOfStage((tree, ring))
        small = best.evaluate(16 * KB)
        assert small.algorithm == "tree"
        best.commit(small)
        assert net.bytes_sent == net.tree_allreduce_cost(
            16 * KB, 16).bytes_on_wire
        net.reset()
        large = best.evaluate(64 * MB)
        assert large.algorithm == "ring"
        best.commit(large)
        assert net.bytes_sent == net.ring_allreduce_cost(
            64 * MB, 16).bytes_on_wire

    def test_size_switch_threshold_boundary(self):
        net = Network()
        switch = SizeSwitchStage(TreeAllreduceStage(net, 16),
                                 RingStage(net, 16, lanes=1),
                                 threshold=256 * KB)
        assert switch.evaluate(256 * KB).algorithm == "tree"
        assert switch.evaluate(256 * KB + 1).algorithm == "ring"

    def test_vendor_stage_modes(self):
        net = Network()
        assert isinstance(vendor_network_stage(net, 8, adaptive=True),
                          BestOfStage)
        assert isinstance(vendor_network_stage(net, 8, adaptive=False),
                          SizeSwitchStage)


class TestHierarchyComposition:
    def mk(self, inter_time_stage=None, nnodes=8):
        net = Network()
        stages = [
            const_leaf("rs", 3.0, dav=30),
            inter_time_stage or RingStage(net, nnodes, lanes=8),
            const_leaf("ag", 1.0, dav=10),
        ]
        return Hierarchy(stages, network=net, nnodes=nnodes, nranks=64), net

    def test_serial_total_is_intra_plus_inter(self):
        h, net = self.mk()
        res = h.run(4 * MB)
        assert res.time == res.intra_time + res.inter_time
        assert res.intra_time == 4.0
        assert res.dav == 40

    def test_pipeline_formula(self):
        h, net = self.mk()
        res = h.run(4 * MB, chunks=4)
        cts = [s.chunk_time for s in res.stages]
        assert res.time == pytest.approx(sum(cts) + 3 * max(cts))
        assert res.pipelined

    def test_counters_reset_per_run_and_roll_up(self):
        h, net = self.mk()
        first = h.run(4 * MB)
        second = h.run(4 * MB)
        assert net.bytes_sent == second.network_bytes  # no accumulation
        doc = second.to_doc()
        assert doc["schema"] == "repro-hier/1"
        assert doc["network"]["bytes_sent"] == sum(
            lv["bytes_on_wire"] for lv in doc["levels"])
        assert doc["network"]["messages"] == sum(
            lv["messages"] for lv in doc["levels"])
        assert first.network_bytes == second.network_bytes

    def test_pipelined_commits_chunked_traffic(self):
        h, net = self.mk()
        serial = h.run(4 * MB)
        piped = h.run(4 * MB, chunks=4)
        assert net.messages == piped.network_messages
        assert piped.network_messages == 4 * serial.network_messages

    def test_validation(self):
        h, _ = self.mk()
        with pytest.raises(ValueError):
            h.run(-1)
        with pytest.raises(ValueError):
            h.run(1 * MB, chunks=0)
        with pytest.raises(ValueError):
            Hierarchy([])


class TestAllreduceStages:
    def test_partition_stack(self):
        comm = Communicator(8, machine=TINY, functional=False)
        net = Network()
        stages = allreduce_stages(YHCCL(comm), net=net, nnodes=4,
                                  nranks_per_node=8)
        assert [s.name for s in stages] == ["reduce_scatter",
                                            "ring-8lane", "allgather"]

    def test_leader_stack(self):
        comm = Communicator(8, machine=TINY, functional=False)
        from repro.library.mpi import MPILibrary

        net = Network()
        stages = allreduce_stages(MPILibrary(comm, "Open MPI"), net=net,
                                  nnodes=4, nranks_per_node=8,
                                  mode="leader")
        assert stages[0].name == "reduce" and stages[2].name == "bcast"
        assert isinstance(stages[1], SizeSwitchStage)

    def test_allgather_partition_is_ceil_divided(self):
        sizes = []

        def fake_ag(n):
            sizes.append(n)
            return FakeLeafResult(1.0)

        net = Network()
        stages = allreduce_stages(
            None, net=net, nnodes=4, nranks_per_node=8,
            leaf_ops={"reduce_scatter": lambda n: FakeLeafResult(1.0),
                      "allgather": fake_ag})
        ag = stages[2]
        ag.evaluate(100)  # 100 bytes over 8 ranks -> ceil = 13
        ag.evaluate(5)  # tiny message: one byte per rank, not the whole 5
        ag.evaluate(0)
        assert sizes == [13, 1, 0]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            allreduce_stages(None, net=Network(), nnodes=4,
                             nranks_per_node=8, mode="flat")


class TestTopologyHierarchy:
    def test_uniform_matches_multinode_facade(self):
        """The composed two-level hierarchy reproduces the multinode
        facade bitwise on a uniform topology."""
        topo = Topology.uniform("NodeA", 4, 8)
        h = hierarchy_for_topology(topo)
        hres = h.run(1 * MB)
        from repro.machine.spec import PRESETS

        mn = MultiNodeAllreduce(
            Communicator(8, machine=PRESETS["NodeA"], functional=False), 4)
        mres = mn.allreduce(1 * MB)  # below the pipeline gate
        assert hres.time == mres.time
        assert hres.intra_time == mres.intra_time
        assert hres.inter_time == mres.inter_time

    def test_heterogeneous_groups_gate_on_slowest(self):
        topo = Topology(groups=(NodeGroup("NodeA", 2, 8),
                                NodeGroup("NodeB", 2, 4)))
        h = hierarchy_for_topology(topo)
        assert isinstance(h.stages[0], GroupedLeafStage)
        # lanes follow the smallest group's rank count
        assert h.stages[1].lanes == 4
        res = h.run(256 * KB)
        doc = res.to_doc()
        assert doc["topology"]["nranks"] == 2 * 8 + 2 * 4
        assert doc["nnodes"] == 4
        a = [s for s in h.stages[0].children if "NodeA" in s.name]
        assert a, [s.name for s in h.stages[0].children]

    def test_vendor_topology(self):
        topo = Topology.uniform("NodeA", 4, 8)
        h = hierarchy_for_topology(topo, implementation="OMPI-hcoll")
        assert isinstance(h.stages[1], BestOfStage)

    def test_custom_network_stage_factory(self):
        topo = Topology.uniform("NodeA", 8, 8)
        h = hierarchy_for_topology(
            topo,
            network_stage_factory=lambda net, n: RabenseifnerStage(
                net, n, lanes=8))
        res = h.run(1 * MB)
        inter = [s for s in res.stages if s.level == "inter"]
        assert inter[0].algorithm == "rabenseifner"
