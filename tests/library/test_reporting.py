"""Report builder tests."""

import json

import pytest

from repro.bench.jsonio import benchmark_doc, canonical_dumps
from repro.bench.table import SweepTable
from repro.reporting import build_report, collect_sections, write_report
from repro.__main__ import main as cli_main


def sample_table(title="Figure 11 sweep (NodeA)"):
    # non-alphabetical insertion order: column layout must survive the
    # disk round trip via impl_order even though JSON keys are sorted
    t = SweepTable(title=title, sizes=[1024, 4096], baseline="Ring")
    for impl, base in (("Ring", 2e-6), ("MA", 1e-6)):
        for s in t.sizes:
            t.add(impl, s, base * s, dav=3 * s, algorithm=impl.lower(),
                  counters={"schema": "repro-obs/1", "nranks": 4})
    t.note("tiny fixture sweep")
    return t


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig09_reduce_scatter_NodeA.txt").write_text("RS TABLE A\n")
    (d / "fig09_reduce_scatter_NodeB.txt").write_text("RS TABLE B\n")
    (d / "table4_stream.txt").write_text("STREAM TABLE\n")
    (d / "ablation_sync.txt").write_text("SYNC ABLATION\n")
    (d / "mystery.txt").write_text("UNINDEXED\n")
    # a repro-bench/1 JSON result (the `bench` runner's output format)
    doc = benchmark_doc("fig11_allreduce", source_version="test",
                        quick=False, tables=[sample_table()])
    (d / "BENCH_fig11_allreduce.json").write_text(canonical_dumps(doc))
    (d / "BENCH_summary.json").write_text(canonical_dumps(
        {"schema": "repro-bench/1", "benchmarks": {}}
    ))
    return d


class TestCollect:
    def test_orders_by_experiment_index(self, results_dir):
        sections = collect_sections(results_dir)
        headings = [s.heading for s in sections]
        assert headings.index("Table 4 — sliced STREAM bandwidth") < \
            headings.index("Figure 9 — reduce-scatter comparison") or \
            True  # order follows EXPERIMENT_ORDER
        assert headings[0].startswith("Table 4") or \
            headings[0].startswith("Figure")
        assert "Other results" in headings  # the unindexed file

    def test_groups_multi_file_experiments(self, results_dir):
        sections = collect_sections(results_dir)
        fig9 = next(s for s in sections if s.heading.startswith("Figure 9"))
        assert len(fig9.files) == 2

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="benchmark"):
            collect_sections(tmp_path / "nope")

    def test_error_recommends_bench_cli(self, tmp_path):
        # the fix for the stale `pytest benchmarks/ --benchmark-only`
        # recommendation: the suite runs via `python -m repro bench`
        with pytest.raises(FileNotFoundError,
                           match="python -m repro bench all"):
            collect_sections(tmp_path / "nope")

    def test_json_results_are_indexed_by_experiment(self, results_dir):
        sections = collect_sections(results_dir)
        fig11 = next(s for s in sections if s.heading.startswith("Figure 11"))
        assert [f.name for f in fig11.files] == ["BENCH_fig11_allreduce.json"]

    def test_summary_json_is_not_a_section(self, results_dir):
        sections = collect_sections(results_dir)
        names = {f.name for s in sections for f in s.files}
        assert "BENCH_summary.json" not in names


class TestBuild:
    def test_report_contains_tables(self, results_dir):
        text = build_report(results_dir)
        assert "RS TABLE A" in text and "STREAM TABLE" in text
        assert "UNINDEXED" in text
        assert text.startswith("# Reproduction report")

    def test_json_sweeps_render_identically_to_live_tables(self, results_dir):
        # shared renderer: the report shows byte-for-byte what the live
        # `bench` run printed for this sweep
        text = build_report(results_dir)
        assert sample_table().render() in text

    def test_sweep_round_trips_through_json(self):
        table = sample_table()
        back = SweepTable.from_json(
            json.loads(json.dumps(table.to_json()))
        )
        assert back.render() == table.render()
        assert back.sizes == table.sizes
        assert back.counters == table.counters
        assert back.to_json() == table.to_json()

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "report.md")
        assert out.exists()
        assert "SYNC ABLATION" in out.read_text()

    def test_cli_missing_dir_is_friendly(self, tmp_path, capsys):
        # usage error, not a traceback
        rc = cli_main(["report", "--results", str(tmp_path / "nope")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "python -m repro bench all" in err

    def test_cli_report(self, results_dir, tmp_path, capsys):
        rc = cli_main(["report", "--results", str(results_dir)])
        assert rc == 0
        assert "RS TABLE A" in capsys.readouterr().out
        out = tmp_path / "r.md"
        rc = cli_main(["report", "--results", str(results_dir),
                       "--out", str(out)])
        assert rc == 0 and out.exists()
