"""Report builder tests."""

import pytest

from repro.reporting import build_report, collect_sections, write_report
from repro.__main__ import main as cli_main


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig09_reduce_scatter_NodeA.txt").write_text("RS TABLE A\n")
    (d / "fig09_reduce_scatter_NodeB.txt").write_text("RS TABLE B\n")
    (d / "table4_stream.txt").write_text("STREAM TABLE\n")
    (d / "ablation_sync.txt").write_text("SYNC ABLATION\n")
    (d / "mystery.txt").write_text("UNINDEXED\n")
    return d


class TestCollect:
    def test_orders_by_experiment_index(self, results_dir):
        sections = collect_sections(results_dir)
        headings = [s.heading for s in sections]
        assert headings.index("Table 4 — sliced STREAM bandwidth") < \
            headings.index("Figure 9 — reduce-scatter comparison") or \
            True  # order follows EXPERIMENT_ORDER
        assert headings[0].startswith("Table 4") or \
            headings[0].startswith("Figure")
        assert "Other results" in headings  # the unindexed file

    def test_groups_multi_file_experiments(self, results_dir):
        sections = collect_sections(results_dir)
        fig9 = next(s for s in sections if s.heading.startswith("Figure 9"))
        assert len(fig9.files) == 2

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="benchmark"):
            collect_sections(tmp_path / "nope")


class TestBuild:
    def test_report_contains_tables(self, results_dir):
        text = build_report(results_dir)
        assert "RS TABLE A" in text and "STREAM TABLE" in text
        assert "UNINDEXED" in text
        assert text.startswith("# Reproduction report")

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "report.md")
        assert out.exists()
        assert "SYNC ABLATION" in out.read_text()

    def test_cli_report(self, results_dir, tmp_path, capsys):
        rc = cli_main(["report", "--results", str(results_dir)])
        assert rc == 0
        assert "RS TABLE A" in capsys.readouterr().out
        out = tmp_path / "r.md"
        rc = cli_main(["report", "--results", str(results_dir),
                       "--out", str(out)])
        assert rc == 0 and out.exists()
