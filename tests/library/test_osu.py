"""OSU-style harness and CLI tests."""

import pytest

from repro.library.osu import (
    COLLECTIVES,
    OSUBenchmark,
    OSUResult,
    compare_priorities,
)
from repro.__main__ import main as cli_main

KB = 1024


class TestOSUBenchmark:
    def test_size_sweep_doubles(self):
        b = OSUBenchmark("allreduce", msg_range=(64 * KB, 512 * KB))
        assert b.sizes() == [64 * KB, 128 * KB, 256 * KB, 512 * KB]

    def test_rejects_unknown_collective(self):
        with pytest.raises(ValueError, match="unknown collective"):
            OSUBenchmark("alltoall")

    def test_rejects_unknown_machine(self):
        with pytest.raises(ValueError, match="unknown machine"):
            OSUBenchmark("allreduce", machine="NodeZ")

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError, match="range"):
            OSUBenchmark("allreduce", msg_range=(1024, 512))

    @pytest.mark.parametrize("collective", COLLECTIVES)
    def test_runs_every_collective(self, collective):
        b = OSUBenchmark(collective, nranks=8, machine="ClusterC",
                         msg_range=(64 * KB, 128 * KB))
        rows = b.run()
        assert len(rows) == 2
        assert all(isinstance(r, OSUResult) for r in rows)
        assert all(r.avg_latency_us > 0 for r in rows)

    def test_vendor_fallback(self):
        b = OSUBenchmark("allreduce", nranks=8, machine="ClusterC",
                         use_yhccl=False, vendor="MPICH",
                         msg_range=(64 * KB, 64 * KB))
        assert b.run()[0].avg_latency_us > 0

    def test_validation_mode(self):
        b = OSUBenchmark("allreduce", nranks=4, machine="ClusterC",
                         validate=True, msg_range=(8 * KB, 8 * KB))
        rows = b.run()
        assert rows[0].validated

    def test_render_format(self):
        b = OSUBenchmark("bcast", nranks=8, machine="ClusterC",
                         msg_range=(64 * KB, 128 * KB))
        text = b.render(b.run())
        assert "Broadcast" in text
        assert "65536" in text and "131072" in text

    def test_compare_priorities_output(self):
        text = compare_priorities("allreduce", nranks=8,
                                  machine="ClusterC",
                                  msg_range=(512 * KB, 1024 * KB))
        assert "speedup" in text
        assert "YHCCL" in text and "Open MPI" in text


class TestCLI:
    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "NodeA" in out and "socket-ma" in out

    def test_osu_command(self, capsys):
        rc = cli_main([
            "osu", "allreduce", "-n", "8", "--machine", "ClusterC",
            "-m", "65536:131072",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Allreduce" in out and "65536" in out

    def test_osu_no_yhccl(self, capsys):
        rc = cli_main([
            "osu", "bcast", "-n", "8", "--machine", "ClusterC",
            "-m", "65536:65536", "--no-yhccl", "--vendor", "MPICH",
        ])
        assert rc == 0
        assert "MPICH" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        rc = cli_main([
            "compare", "allreduce", "-n", "8", "--machine", "ClusterC",
            "-m", "1048576:1048576",
        ])
        assert rc == 0
        assert "speedup" in capsys.readouterr().out

    def test_bad_collective_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["osu", "alltoall"])


class TestSizeSweepProperties:
    from hypothesis import given, settings, strategies as st

    @given(lo_exp=st.integers(3, 20), span=st.integers(0, 8))
    @settings(max_examples=30, deadline=None)
    def test_sizes_double_and_stay_bounded(self, lo_exp, span):
        lo = 1 << lo_exp
        hi = lo << span
        b = OSUBenchmark("allreduce", msg_range=(lo, hi))
        sizes = b.sizes()
        assert sizes[0] == lo and sizes[-1] <= hi
        assert all(b2 == 2 * a for a, b2 in zip(sizes, sizes[1:]))
        assert len(sizes) == span + 1
