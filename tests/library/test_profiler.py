"""PMPI-style profiler tests."""

import pytest

from repro.library.communicator import Communicator
from repro.library.profiler import Profiler
from repro.library.yhccl import YHCCL

from tests.conftest import TINY

KB = 1024


@pytest.fixture
def profiled():
    lib = YHCCL(Communicator(8, machine=TINY, functional=False))
    return Profiler(lib)


class TestProfiler:
    def test_records_calls(self, profiled):
        profiled.allreduce(64 * KB)
        profiled.bcast(32 * KB)
        assert len(profiled.records) == 2
        assert profiled.records[0].kind == "allreduce"
        assert profiled.records[1].nbytes == 32 * KB

    def test_results_pass_through(self, profiled):
        r = profiled.allreduce(64 * KB)
        assert r.time > 0 and r.kind == "allreduce"

    def test_stats_aggregation(self, profiled):
        for _ in range(3):
            profiled.allreduce(64 * KB)
        st = profiled.stats()["allreduce"]
        assert st.calls == 3
        assert st.total_bytes == 3 * 64 * KB
        assert st.total_time > 0

    def test_total_time(self, profiled):
        profiled.allreduce(64 * KB)
        profiled.reduce(64 * KB)
        assert profiled.total_time == pytest.approx(
            sum(r.time for r in profiled.records)
        )

    def test_report_format(self, profiled):
        profiled.allreduce(64 * KB)
        profiled.allgather(8 * KB)
        report = profiled.report()
        assert "allreduce" in report and "allgather" in report
        assert "DAB" in report

    def test_clear(self, profiled):
        profiled.allreduce(8 * KB)
        profiled.clear()
        assert not profiled.records

    def test_dab_property(self, profiled):
        profiled.allreduce(64 * KB)
        rec = profiled.records[0]
        assert rec.dab == pytest.approx(rec.dav / rec.time)

    def test_dab_zero_time_is_zero_not_inf(self):
        from repro.library.profiler import ProfileRecord

        rec = ProfileRecord(kind="allreduce", nbytes=0, time=0.0,
                            dav=64 * KB, algorithm="ma")
        assert rec.dab == 0.0

    def test_missing_attr_raises(self, profiled):
        # neither a collective nor anything the wrapped library has
        with pytest.raises(AttributeError):
            profiled.alltoall

    def test_delegates_non_collective_api(self, profiled):
        # a PMPI shim is transparent: the wrapped library's full
        # surface stays reachable, unprofiled
        assert profiled.comm is profiled.library.comm
        assert profiled.config is profiled.library.config
        report = profiled.analyze("allreduce", 8 * KB)
        assert report.ok
        assert not profiled.records  # analyze is not a collective call

    def test_dunders_keep_standard_semantics(self, profiled):
        import copy

        # copy/pickle probe dunders like __deepcopy__/__reduce_ex__ and
        # must get AttributeError, not a delegated library attribute
        assert copy.copy(profiled).library is profiled.library
        with pytest.raises(AttributeError):
            profiled.__wrapped__

    def test_records_carry_counters(self, profiled):
        profiled.allreduce(64 * KB)
        snap = profiled.records[0].counters
        assert snap is not None and snap["schema"] == "repro-obs/1"
        assert snap["nranks"] == 8

    def test_report_zero_time_aggregate_is_finite(self):
        from repro.library.profiler import ProfileRecord, Profiler

        prof = Profiler(library=None)
        prof.records.append(ProfileRecord(
            kind="allreduce", nbytes=0, time=0.0, dav=64 * KB,
            algorithm="ma",
        ))
        assert "inf" not in prof.report()
