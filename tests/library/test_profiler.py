"""PMPI-style profiler tests."""

import pytest

from repro.library.communicator import Communicator
from repro.library.profiler import Profiler
from repro.library.yhccl import YHCCL

from tests.conftest import TINY

KB = 1024


@pytest.fixture
def profiled():
    lib = YHCCL(Communicator(8, machine=TINY, functional=False))
    return Profiler(lib)


class TestProfiler:
    def test_records_calls(self, profiled):
        profiled.allreduce(64 * KB)
        profiled.bcast(32 * KB)
        assert len(profiled.records) == 2
        assert profiled.records[0].kind == "allreduce"
        assert profiled.records[1].nbytes == 32 * KB

    def test_results_pass_through(self, profiled):
        r = profiled.allreduce(64 * KB)
        assert r.time > 0 and r.kind == "allreduce"

    def test_stats_aggregation(self, profiled):
        for _ in range(3):
            profiled.allreduce(64 * KB)
        st = profiled.stats()["allreduce"]
        assert st.calls == 3
        assert st.total_bytes == 3 * 64 * KB
        assert st.total_time > 0

    def test_total_time(self, profiled):
        profiled.allreduce(64 * KB)
        profiled.reduce(64 * KB)
        assert profiled.total_time == pytest.approx(
            sum(r.time for r in profiled.records)
        )

    def test_report_format(self, profiled):
        profiled.allreduce(64 * KB)
        profiled.allgather(8 * KB)
        report = profiled.report()
        assert "allreduce" in report and "allgather" in report
        assert "DAB" in report

    def test_clear(self, profiled):
        profiled.allreduce(8 * KB)
        profiled.clear()
        assert not profiled.records

    def test_dab_property(self, profiled):
        profiled.allreduce(64 * KB)
        rec = profiled.records[0]
        assert rec.dab == pytest.approx(rec.dav / rec.time)

    def test_dab_zero_time_is_zero_not_inf(self):
        from repro.library.profiler import ProfileRecord

        rec = ProfileRecord(kind="allreduce", nbytes=0, time=0.0,
                            dav=64 * KB, algorithm="ma")
        assert rec.dab == 0.0

    def test_non_collective_attr_raises(self, profiled):
        with pytest.raises(AttributeError):
            profiled.alltoall
