"""Auto-tuner tests."""

import pytest

from repro.library.communicator import Communicator
from repro.library.tuner import (
    CANDIDATES,
    DecisionEntry,
    DecisionTable,
    Tuner,
)

from tests.conftest import TINY

KB = 1024


@pytest.fixture(scope="module")
def table():
    comm = Communicator(8, machine=TINY, functional=False)
    return Tuner(comm).tune(
        "allreduce", sizes=[2 * KB, 64 * KB, 512 * KB],
        imax=8 * KB,
    )


class TestTuner:
    def test_requires_machine(self):
        with pytest.raises(ValueError, match="machine"):
            Tuner(Communicator(4))

    def test_unknown_kind(self):
        comm = Communicator(8, machine=TINY, functional=False)
        with pytest.raises(ValueError, match="candidates"):
            Tuner(comm).tune("alltoall")

    def test_table_covers_sizes(self, table):
        assert [e.size for e in table.entries] == [2 * KB, 64 * KB,
                                                   512 * KB]
        assert all(isinstance(e, DecisionEntry) for e in table.entries)

    def test_winners_are_candidates(self, table):
        for e in table.entries:
            assert e.algorithm in CANDIDATES["allreduce"]
            assert e.margin >= 1.0

    def test_large_messages_prefer_ma_family(self, table):
        assert table.entries[-1].algorithm in ("ma", "socket-ma")

    def test_algorithm_for_lookup(self, table):
        assert table.algorithm_for(1) == table.entries[0].algorithm
        assert table.algorithm_for(1 << 30) == table.entries[-1].algorithm

    def test_empty_table_lookup_raises(self):
        t = DecisionTable(kind="allreduce", machine="x", nranks=2, imax=1)
        with pytest.raises(ValueError):
            t.algorithm_for(8)

    def test_to_config(self, table):
        cfg = table.to_config()
        assert cfg.imax == 8 * KB
        assert cfg.small_threshold >= 0

    def test_render(self, table):
        text = table.render()
        assert "decision table" in text and "winner" in text

    def test_tune_imax_picks_candidate(self):
        comm = Communicator(8, machine=TINY, functional=False)
        imax = Tuner(comm).tune_imax("allreduce", nbytes=1 << 20,
                                     candidates=[4 * KB, 32 * KB])
        assert imax in (4 * KB, 32 * KB)


class TestTunerAgreesWithPaper:
    @pytest.mark.slow
    def test_node_a_imax_near_256kb(self):
        """The paper's hand-tuned Imax=256 KB should be measurement's
        pick (or within a factor of two of it) on NodeA."""
        from repro.machine.spec import NODE_A, MB

        comm = Communicator(64, machine=NODE_A, functional=False)
        best = Tuner(comm).tune_imax(
            "allreduce", nbytes=16 * MB,
            candidates=[64 * KB, 128 * KB, 256 * KB, 512 * KB],
        )
        assert 128 * KB <= best <= 512 * KB
