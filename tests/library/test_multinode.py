"""Multi-node hierarchical allreduce tests (Figure 16b mechanisms)."""

import pytest

from repro.library.communicator import Communicator
from repro.library.multinode import MultiNodeAllreduce

from tests.conftest import TINY

KB = 1024
MB = 1024 * KB


def mk(implementation, nnodes):
    comm = Communicator(8, machine=TINY, functional=False)
    return MultiNodeAllreduce(comm, nnodes, implementation=implementation)


class TestMultiNode:
    def test_single_node_no_network(self):
        res = mk("YHCCL", 1).allreduce(1 * MB)
        assert res.inter_time == 0.0
        assert res.time == res.intra_time

    def test_rejects_zero_nodes(self):
        comm = Communicator(8, machine=TINY, functional=False)
        with pytest.raises(ValueError):
            MultiNodeAllreduce(comm, 0)

    def test_breakdown_sums(self):
        comm = Communicator(8, machine=TINY, functional=False)
        res = MultiNodeAllreduce(comm, 8, implementation="YHCCL",
                                 pipelined=False).allreduce(4 * MB)
        assert res.time == pytest.approx(res.intra_time + res.inter_time)
        # the default (pipelined) never exceeds the serial sum
        piped = mk("YHCCL", 8).allreduce(4 * MB)
        assert piped.time <= res.intra_time + res.inter_time

    def test_multilane_beats_single_leader_large(self):
        """YHCCL's multi-lane network phase (Section 5.5)."""
        s = 64 * MB
        y = mk("YHCCL", 16).allreduce(s)
        o = mk("Open MPI", 16).allreduce(s)
        assert y.inter_time < o.inter_time
        assert y.time < o.time

    def test_trees_win_small_messages(self):
        """Vendor tree exchanges have lower latency on small messages
        across many nodes — the paper's stated weakness of YHCCL's
        ring-based strategy."""
        s = 16 * KB
        y = mk("YHCCL", 64).allreduce(s)
        h = mk("OMPI-hcoll", 64).allreduce(s)
        assert h.inter_time < y.inter_time

    def test_hcoll_picks_best_network_phase(self):
        small = mk("OMPI-hcoll", 16).allreduce(16 * KB)
        big = mk("OMPI-hcoll", 16).allreduce(64 * MB)
        # consistent: never worse than both pure strategies
        from repro.machine.network import Network

        net = Network()
        assert small.inter_time <= net.ring_allreduce_time(16 * KB, 16)
        assert big.inter_time <= net.tree_allreduce_time(64 * MB, 16)

    @pytest.mark.parametrize("impl", ["YHCCL", "Open MPI", "MVAPICH2",
                                      "MPICH", "OMPI-hcoll"])
    def test_all_implementations_run(self, impl):
        assert mk(impl, 4).allreduce(1 * MB).time > 0


class TestPipelinedOverlap:
    """Section 5.5's segmented pipeline: inter-node exchange overlaps
    intra-node phases."""

    def test_pipelined_faster_than_serial(self):
        comm = Communicator(8, machine=TINY, functional=False)
        serial = MultiNodeAllreduce(comm, 8, implementation="YHCCL",
                                    pipelined=False).allreduce(8 * MB)
        comm2 = Communicator(8, machine=TINY, functional=False)
        piped = MultiNodeAllreduce(comm2, 8, implementation="YHCCL",
                                   pipelined=True).allreduce(8 * MB)
        assert piped.time < serial.time
        assert piped.pipelined and not serial.pipelined
        assert 0.0 < piped.overlap_saving < 1.0

    def test_single_node_unaffected(self):
        comm = Communicator(8, machine=TINY, functional=False)
        res = MultiNodeAllreduce(comm, 1, implementation="YHCCL",
                                 pipelined=True).allreduce(1 * MB)
        assert not res.pipelined
        assert res.inter_time == 0.0

    def test_pipeline_bounded_below_by_slowest_stage(self):
        comm = Communicator(8, machine=TINY, functional=False)
        mn = MultiNodeAllreduce(comm, 16, implementation="YHCCL")
        res = mn.allreduce(16 * MB)
        assert res.time >= max(res.inter_time,
                               res.intra_time / 2) * 0.99


class TestVendorProbeAccounting:
    """Bugfix: the hcoll tree-vs-ring probe priced both strategies but
    must record only the chosen one (estimate/commit split)."""

    def test_counters_reflect_only_the_chosen_path(self):
        mn = mk("OMPI-hcoll", 16)
        res = mn.allreduce(16 * KB)  # tree wins at this size
        inter = [s for s in res.hierarchy.stages if s.level == "inter"]
        assert inter[0].algorithm == "tree"
        tree = mn.network.tree_allreduce_cost(16 * KB, 16)
        ring = mn.network.ring_allreduce_cost(16 * KB, 16)
        assert mn.network.bytes_sent == tree.bytes_on_wire
        assert mn.network.bytes_sent != tree.bytes_on_wire + ring.bytes_on_wire
        assert mn.network.messages == tree.messages

    def test_counters_reset_per_call(self):
        mn = mk("OMPI-hcoll", 16)
        mn.allreduce(16 * KB)
        first = (mn.network.bytes_sent, mn.network.messages)
        mn.allreduce(16 * KB)
        assert (mn.network.bytes_sent, mn.network.messages) == first


class TestCeilPartition:
    """Bugfix: the trailing allgather partition is ceil(nbytes / p),
    never the floor (remainder dropped) or the whole message
    (nbytes < p)."""

    def ag_stage(self, res):
        return next(s for s in res.hierarchy.stages
                    if s.name == "allgather")

    def test_remainder_not_dropped(self):
        res = mk("YHCCL", 4).allreduce(100)  # 100 over p=8 ranks
        assert self.ag_stage(res).nbytes == 13  # ceil, not 12

    def test_tiny_message_not_inflated(self):
        res = mk("YHCCL", 4).allreduce(5)  # nbytes < p
        assert self.ag_stage(res).nbytes == 1  # one byte, not all 5

    def test_exact_division_unchanged(self):
        res = mk("YHCCL", 4).allreduce(1 * MB)
        assert self.ag_stage(res).nbytes == 1 * MB // 8


class TestPipelinedAccounting:
    """Bugfix: a C-chunk pipeline pays inter-node latency and message
    counts per chunk, and the document totals match the live network
    counters."""

    def test_messages_scale_with_chunks(self):
        mn = mk("YHCCL", 8)
        res = mn.allreduce(8 * MB)
        assert res.pipelined
        c = MultiNodeAllreduce.PIPELINE_CHUNKS
        per = mn.network.ring_allreduce_cost(
            -(-8 * MB // c), 8, concurrent_procs=8)
        inter = next(s for s in res.hierarchy.stages if s.level == "inter")
        assert inter.messages == c * per.messages
        assert inter.steps == c * per.steps
        assert inter.time == per.time * c

    def test_document_totals_match_live_counters(self):
        mn = mk("YHCCL", 8)
        res = mn.allreduce(8 * MB)
        assert mn.network.bytes_sent == res.hierarchy.network_bytes
        assert mn.network.messages == res.hierarchy.network_messages
        doc = res.hierarchy.to_doc()
        assert doc["network"]["bytes_sent"] == sum(
            lv["bytes_on_wire"] for lv in doc["levels"])


class TestLegacyEquivalence:
    """The composed two-level hierarchy reproduces the pre-refactor
    facade arithmetic bitwise (serial path: intra sum + inter sum)."""

    def test_yhccl_serial_time_is_legacy_formula(self):
        comm = Communicator(8, machine=TINY, functional=False)
        mn = MultiNodeAllreduce(comm, 16, implementation="YHCCL",
                                pipelined=False)
        s = 4 * MB
        res = mn.allreduce(s)
        from repro.library.yhccl import YHCCL
        from repro.machine.network import Network

        lib = YHCCL(Communicator(8, machine=TINY, functional=False))
        rs = lib.reduce_scatter(s)
        ag = lib.allgather(-(-s // 8))
        inter = Network().ring_allreduce_time(s, 16, concurrent_procs=8)
        assert res.time == (rs.time + ag.time) + inter
        assert res.intra_time == rs.time + ag.time
        assert res.inter_time == inter

    def test_vendor_serial_time_is_legacy_formula(self):
        comm = Communicator(8, machine=TINY, functional=False)
        mn = MultiNodeAllreduce(comm, 16, implementation="Open MPI")
        s = 1 * MB
        res = mn.allreduce(s)
        from repro.library.mpi import MPILibrary
        from repro.machine.network import Network

        lib = MPILibrary(Communicator(8, machine=TINY, functional=False),
                         "Open MPI")
        net = Network()
        # size-switch picks the single-lane ring above the tree cutoff
        inter = net.ring_allreduce_time(s, 16)
        expect = (lib.reduce(s).time + lib.bcast(s).time) + inter
        assert res.time == expect
