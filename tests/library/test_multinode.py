"""Multi-node hierarchical allreduce tests (Figure 16b mechanisms)."""

import pytest

from repro.library.communicator import Communicator
from repro.library.multinode import MultiNodeAllreduce

from tests.conftest import TINY

KB = 1024
MB = 1024 * KB


def mk(implementation, nnodes):
    comm = Communicator(8, machine=TINY, functional=False)
    return MultiNodeAllreduce(comm, nnodes, implementation=implementation)


class TestMultiNode:
    def test_single_node_no_network(self):
        res = mk("YHCCL", 1).allreduce(1 * MB)
        assert res.inter_time == 0.0
        assert res.time == res.intra_time

    def test_rejects_zero_nodes(self):
        comm = Communicator(8, machine=TINY, functional=False)
        with pytest.raises(ValueError):
            MultiNodeAllreduce(comm, 0)

    def test_breakdown_sums(self):
        comm = Communicator(8, machine=TINY, functional=False)
        res = MultiNodeAllreduce(comm, 8, implementation="YHCCL",
                                 pipelined=False).allreduce(4 * MB)
        assert res.time == pytest.approx(res.intra_time + res.inter_time)
        # the default (pipelined) never exceeds the serial sum
        piped = mk("YHCCL", 8).allreduce(4 * MB)
        assert piped.time <= res.intra_time + res.inter_time

    def test_multilane_beats_single_leader_large(self):
        """YHCCL's multi-lane network phase (Section 5.5)."""
        s = 64 * MB
        y = mk("YHCCL", 16).allreduce(s)
        o = mk("Open MPI", 16).allreduce(s)
        assert y.inter_time < o.inter_time
        assert y.time < o.time

    def test_trees_win_small_messages(self):
        """Vendor tree exchanges have lower latency on small messages
        across many nodes — the paper's stated weakness of YHCCL's
        ring-based strategy."""
        s = 16 * KB
        y = mk("YHCCL", 64).allreduce(s)
        h = mk("OMPI-hcoll", 64).allreduce(s)
        assert h.inter_time < y.inter_time

    def test_hcoll_picks_best_network_phase(self):
        small = mk("OMPI-hcoll", 16).allreduce(16 * KB)
        big = mk("OMPI-hcoll", 16).allreduce(64 * MB)
        # consistent: never worse than both pure strategies
        from repro.machine.network import Network

        net = Network()
        assert small.inter_time <= net.ring_allreduce_time(16 * KB, 16)
        assert big.inter_time <= net.tree_allreduce_time(64 * MB, 16)

    @pytest.mark.parametrize("impl", ["YHCCL", "Open MPI", "MVAPICH2",
                                      "MPICH", "OMPI-hcoll"])
    def test_all_implementations_run(self, impl):
        assert mk(impl, 4).allreduce(1 * MB).time > 0


class TestPipelinedOverlap:
    """Section 5.5's segmented pipeline: inter-node exchange overlaps
    intra-node phases."""

    def test_pipelined_faster_than_serial(self):
        comm = Communicator(8, machine=TINY, functional=False)
        serial = MultiNodeAllreduce(comm, 8, implementation="YHCCL",
                                    pipelined=False).allreduce(8 * MB)
        comm2 = Communicator(8, machine=TINY, functional=False)
        piped = MultiNodeAllreduce(comm2, 8, implementation="YHCCL",
                                   pipelined=True).allreduce(8 * MB)
        assert piped.time < serial.time
        assert piped.pipelined and not serial.pipelined
        assert 0.0 < piped.overlap_saving < 1.0

    def test_single_node_unaffected(self):
        comm = Communicator(8, machine=TINY, functional=False)
        res = MultiNodeAllreduce(comm, 1, implementation="YHCCL",
                                 pipelined=True).allreduce(1 * MB)
        assert not res.pipelined
        assert res.inter_time == 0.0

    def test_pipeline_bounded_below_by_slowest_stage(self):
        comm = Communicator(8, machine=TINY, functional=False)
        mn = MultiNodeAllreduce(comm, 16, implementation="YHCCL")
        res = mn.allreduce(16 * MB)
        assert res.time >= max(res.inter_time,
                               res.intra_time / 2) * 0.99
