"""Vendor MPI facade tests."""

import pytest

from repro.library.communicator import Communicator
from repro.library.mpi import ALGORITHMS, MPILibrary, implementations

from tests.conftest import TINY

KB = 1024


class TestRegistry:
    def test_vendor_list(self):
        vendors = implementations()
        assert {"Open MPI", "Intel MPI", "MVAPICH2", "MPICH", "XPMEM"} <= set(
            vendors
        )

    def test_algorithm_registry_names(self):
        assert "ma" in ALGORITHMS and "socket-ma" in ALGORITHMS
        assert "allreduce" in ALGORITHMS["ma"]


class TestMPILibrary:
    @pytest.mark.parametrize("vendor", ["Open MPI", "Intel MPI", "MVAPICH2",
                                        "MPICH", "XPMEM"])
    def test_all_collectives_run(self, vendor):
        comm = Communicator(8, machine=TINY, functional=False)
        lib = MPILibrary(comm, vendor)
        for call in (lib.allreduce, lib.reduce, lib.reduce_scatter,
                     lib.bcast, lib.allgather):
            r = call(64 * KB)
            assert r.time > 0

    def test_unknown_vendor_rejected(self):
        comm = Communicator(4, machine=TINY, functional=False)
        with pytest.raises(ValueError, match="unknown vendor"):
            MPILibrary(comm, "LAM/MPI")

    def test_functional_verification(self):
        comm = Communicator(6, machine=TINY, functional=True)
        for vendor in implementations():
            lib = MPILibrary(comm, vendor)
            lib.allreduce(8 * KB)

    def test_yhccl_beats_vendors_on_large_allreduce(self):
        """Figure 15c's headline: YHCCL wins on large messages."""
        from repro.library.yhccl import YHCCL

        s = 4 << 20
        comm = Communicator(8, machine=TINY, functional=False)
        t_yhccl = YHCCL(comm).allreduce(s).time
        for vendor in ("Open MPI", "MPICH", "MVAPICH2"):
            comm2 = Communicator(8, machine=TINY, functional=False)
            t_vendor = MPILibrary(comm2, vendor).allreduce(s).time
            assert t_yhccl < t_vendor, vendor
