"""End-to-end switching behaviour through the YHCCL facade across
machines, sizes and operators — the library-level contract."""

import pytest

from repro.library.communicator import Communicator
from repro.library.yhccl import YHCCL
from repro.collectives.switching import YHCCLConfig

from tests.conftest import TINY

KB = 1024
MB = 1 << 20


class TestRoutingMatrix:
    @pytest.mark.parametrize("size,expect", [
        (16 * KB, "dpml2-allreduce"),
        (256 * KB, "dpml2-allreduce"),
        (257 * KB // 8 * 8 + 8 * KB, "socket-ma-allreduce"),
        (64 * MB, "socket-ma-allreduce"),
    ])
    def test_allreduce_by_size(self, size, expect):
        lib = YHCCL(Communicator(8, machine=TINY, functional=False))
        assert lib.allreduce(size).algorithm == expect

    def test_sub_routes_ordered_at_every_size(self):
        lib = YHCCL(Communicator(4, machine=TINY, functional=True))
        for size in (8 * KB, 1 * MB):
            r = lib.allreduce(size, op="sub")
            assert r.algorithm == "ordered-allreduce"

    def test_policy_recorded(self):
        lib = YHCCL(Communicator(8, machine=TINY, functional=False))
        assert lib.allreduce(1 * MB).copy_policy == "adaptive"
        lib2 = YHCCL(Communicator(8, machine=TINY, functional=False),
                     config=YHCCLConfig(adaptive_copy=False))
        assert lib2.allreduce(1 * MB).copy_policy == "t"

    def test_iterations_warm_faster_or_equal(self):
        comm = Communicator(8, machine=TINY, functional=False)
        cold = YHCCL(comm).allreduce(256 * KB, iterations=1).time
        comm2 = Communicator(8, machine=TINY, functional=False)
        warm = YHCCL(comm2).allreduce(256 * KB, iterations=2).time
        assert warm <= cold

    def test_dav_constant_across_iterations(self):
        """Warm runs change time, never the per-iteration DAV."""
        res = []
        for iters in (1, 2):
            comm = Communicator(8, machine=TINY, functional=False)
            res.append(YHCCL(comm).allreduce(64 * KB, iterations=iters))
        # counters reset per engine.run: both report one iteration's DAV
        assert res[0].dav == res[1].dav
