"""CNN training application tests: model tables, fusion, throughput
shape (Figure 18) and the functional gradient-averaging check."""

import pytest

from repro.apps.cnn import CNNTrainer, MODELS, resnet50, vgg16
from repro.library.communicator import Communicator

from tests.conftest import TINY


class TestModelSpecs:
    def test_resnet50_parameter_count(self):
        # paper: 25.6 M parameters
        assert resnet50().params == pytest.approx(25.6e6, rel=0.01)

    def test_vgg16_parameter_count(self):
        # paper: 138.4 M parameters
        assert vgg16().params == pytest.approx(138.4e6, rel=0.01)

    def test_gradient_bytes_fp32(self):
        m = resnet50()
        assert m.gradient_bytes == 4 * m.params

    def test_registry(self):
        assert set(MODELS) == {"resnet50", "vgg16"}
        assert MODELS["resnet50"]().name == "ResNet-50"


class TestFusion:
    def test_buckets_respect_cap(self):
        comm = Communicator(8, machine=TINY, functional=False)
        m = vgg16()
        tr = CNNTrainer(comm, m, fusion_bytes=64 << 20)
        buckets = tr._fused_buckets()
        # a single tensor may exceed the cap (Horovod never splits);
        # everything else must fit
        max_tensor = max(4 * l.params // l.tensors for l in m.layers)
        assert all(b <= max(64 << 20, max_tensor) for b in buckets)
        total = sum(4 * l.params // l.tensors * l.tensors for l in m.layers)
        assert sum(buckets) == total

    def test_small_fusion_many_buckets(self):
        comm = Communicator(8, machine=TINY, functional=False)
        few = len(CNNTrainer(comm, resnet50(),
                             fusion_bytes=256 << 20)._fused_buckets())
        many = len(CNNTrainer(comm, resnet50(),
                              fusion_bytes=8 << 20)._fused_buckets())
        assert many > few


class TestThroughputShape:
    def _imgs(self, model, impl, nnodes):
        comm = Communicator(8, machine=TINY, functional=False)
        tr = CNNTrainer(comm, model, implementation=impl, nnodes=nnodes,
                        batch_per_rank=1)
        return tr.iteration().images_per_second

    @pytest.mark.parametrize("model_fn", [resnet50, vgg16])
    def test_yhccl_beats_openmpi(self, model_fn):
        m = model_fn()
        assert self._imgs(m, "YHCCL", 4) > self._imgs(m, "Open MPI", 4)

    def test_near_linear_scaling(self):
        m = resnet50()
        t1 = self._imgs(m, "YHCCL", 1)
        t16 = self._imgs(m, "YHCCL", 16)
        assert 8 < t16 / t1 <= 16.5

    def test_speedup_in_paper_band(self):
        """Figure 18 gap: ~1.5x–2.3x across scales."""
        m = resnet50()
        for nn in (1, 16):
            speedup = self._imgs(m, "YHCCL", nn) / self._imgs(m, "Open MPI", nn)
            assert 1.3 < speedup < 2.6

    def test_rejects_bad_batch(self):
        comm = Communicator(8, machine=TINY, functional=False)
        with pytest.raises(ValueError):
            CNNTrainer(comm, resnet50(), batch_per_rank=0)


class TestFunctionalGradients:
    def test_gradient_averaging_exact(self):
        assert CNNTrainer.verify_gradient_averaging(nranks=4, params=500)

    def test_gradient_averaging_more_ranks(self):
        assert CNNTrainer.verify_gradient_averaging(nranks=7, params=123)


class TestFusionOrdering:
    def test_buckets_built_back_to_front(self):
        """Gradients become ready in reverse layer order; the last
        layer's tensors must land in the first bucket."""
        from repro.apps.cnn import ModelSpec, Layer

        comm = Communicator(4, machine=TINY, functional=False)
        m = ModelSpec(name="toy", layers=(
            Layer("first", 1024, 1e6, tensors=1),
            Layer("last", 2048, 1e6, tensors=1),
        ))
        tr = CNNTrainer(comm, m, fusion_bytes=4 * 2048)
        buckets = tr._fused_buckets()
        # 8KB (last) + 4KB (first) fit one 8KB cap? no: 8KB+4KB > 8KB
        assert buckets == [4 * 2048, 4 * 1024]
