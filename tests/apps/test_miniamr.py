"""MiniAMR application tests: real stencil/refinement logic plus the
Figure 17 performance shape."""

import numpy as np
import pytest

from repro.apps.miniamr import MiniAMR, MiniAMRConfig, _Block
from repro.library.communicator import Communicator

from tests.conftest import TINY


def small_cfg(**kw):
    base = dict(block_size=8, blocks_per_rank=4, num_refine=400,
                num_tsteps=4, simulated_refines=20)
    base.update(kw)
    return MiniAMRConfig(**base)


class TestBlock:
    def test_stencil_preserves_mean(self):
        rng = np.random.default_rng(0)
        b = _Block(8, 0, (0.5, 0.5, 0.5), rng)
        before = b.cells.mean()
        b.stencil_sweep()
        assert b.cells.mean() == pytest.approx(before, rel=1e-12)

    def test_stencil_smooths(self):
        rng = np.random.default_rng(0)
        b = _Block(8, 0, (0.5, 0.5, 0.5), rng)
        var_before = b.cells.var()
        for _ in range(5):
            b.stencil_sweep()
        assert b.cells.var() < var_before

    def test_checksum_finite(self):
        rng = np.random.default_rng(0)
        b = _Block(8, 0, (0, 0, 0), rng)
        assert np.isfinite(b.checksum())


class TestRefinement:
    def test_refinement_happens(self):
        comm = Communicator(8, machine=TINY, functional=False)
        app = MiniAMR(comm, small_cfg())
        res = app.run()
        assert res.refined_blocks > 0

    def test_deterministic(self):
        comm = Communicator(8, machine=TINY, functional=False)
        r1 = MiniAMR(comm, small_cfg(), seed=3).run()
        r2 = MiniAMR(comm, small_cfg(), seed=3).run()
        assert r1.checksum == r2.checksum
        assert r1.total_time == r2.total_time

    def test_block_population_bounded(self):
        comm = Communicator(8, machine=TINY, functional=False)
        cfg = small_cfg(simulated_refines=100)
        app = MiniAMR(comm, cfg)
        app.run()
        assert len(app.blocks) <= 4 * cfg.blocks_per_rank

    def test_allreduce_bytes_proportional_to_refines(self):
        assert MiniAMRConfig(num_refine=1000).allreduce_bytes() == 8000
        assert MiniAMRConfig(num_refine=40000).allreduce_bytes() == 320000

    def test_allreduce_bytes_weak_scale_with_nodes(self):
        cfg = MiniAMRConfig(num_refine=1000)
        assert cfg.allreduce_bytes(nnodes=8) == 8 * cfg.allreduce_bytes()


class TestFigure17Shape:
    def test_yhccl_beats_openmpi(self):
        # large refine counts -> large-message allreduce, where the
        # MA + adaptive-copy advantage lives
        comm = Communicator(8, machine=TINY, functional=False)
        cfg = small_cfg(num_refine=40000)
        y = MiniAMR(comm, cfg, implementation="YHCCL").run()
        o = MiniAMR(comm, cfg, implementation="Open MPI").run()
        assert y.total_time < o.total_time
        # compute part identical; the win is in communication
        assert y.compute_time == pytest.approx(o.compute_time, rel=0.05)
        assert y.comm_time < o.comm_time

    def test_total_grows_with_nodes(self):
        comm = Communicator(8, machine=TINY, functional=False)
        cfg = small_cfg(num_refine=40000)
        t1 = MiniAMR(comm, cfg, implementation="YHCCL", nnodes=1).run()
        t8 = MiniAMR(comm, cfg, implementation="YHCCL", nnodes=8).run()
        assert t8.total_time > t1.total_time

    def test_comm_fraction_reported(self):
        comm = Communicator(8, machine=TINY, functional=False)
        res = MiniAMR(comm, small_cfg()).run()
        assert 0.0 <= res.comm_fraction <= 1.0
