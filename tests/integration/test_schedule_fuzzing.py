"""Concurrency fuzzing: collective results must be schedule-invariant.

The engine can randomize which runnable rank it advances next
(``schedule_seed``).  A collective whose cross-rank dependencies are all
protected by flags/barriers produces bit-identical results under every
schedule; a missing synchronization shows up as a divergent result (or
a deadlock).  This is the closest a deterministic simulator gets to a
race detector — and it exercised real bugs during development.

Every fuzzed run is additionally handed to
:func:`repro.analysis.analyze_trace`: the happens-before race detector
must certify the schedule has *no* unordered conflicting accesses under
any interleaving, not merely that this particular interleaving produced
the right bytes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_trace
from repro.collectives.allgather import PIPELINED_ALLGATHER
from repro.collectives.bcast import PIPELINED_BCAST
from repro.collectives.common import (
    make_env,
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)
from repro.collectives.dpml import DPML2_ALLREDUCE, DPML_ALLREDUCE
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.collectives.rabenseifner import RABENSEIFNER_ALLREDUCE
from repro.collectives.ordered import ORDERED_ALLREDUCE
from repro.collectives.rg import RGAllreduce
from repro.collectives.ring import RING_ALLREDUCE
from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.sim.engine import Engine

FUZZ_TARGETS = [
    MA_REDUCE_SCATTER, MA_ALLREDUCE, MA_REDUCE, SOCKET_MA_ALLREDUCE,
    RING_ALLREDUCE, RABENSEIFNER_ALLREDUCE, DPML_ALLREDUCE,
    DPML2_ALLREDUCE, RGAllreduce(branch=2, slice_size=256),
    ORDERED_ALLREDUCE,
]


def _assert_clean(eng):
    report = analyze_trace(eng.trace, eng.nranks)
    assert report.ok, report.describe()


def _result_of(alg, schedule_seed, p=5, s=4096):
    eng = Engine(p, functional=True, seed=7, schedule_seed=schedule_seed,
                 trace=True)
    run_reduce_collective(alg, eng, s, imax=512)
    # the runner verifies against the oracle; the analyzer proves the
    # schedule sound under *every* interleaving, not just this one
    _assert_clean(eng)
    return True


class TestScheduleInvariance:
    @pytest.mark.parametrize(
        "alg", FUZZ_TARGETS, ids=[a.name for a in FUZZ_TARGETS]
    )
    @pytest.mark.parametrize("schedule_seed", [1, 2, 3, 99])
    def test_reduction_collectives_schedule_invariant(self, alg,
                                                      schedule_seed):
        # run_reduce_collective verifies against the numpy oracle: a
        # schedule-dependent race would fail the verification
        assert _result_of(alg, schedule_seed)

    @pytest.mark.parametrize("schedule_seed", [1, 5, 11])
    def test_bcast_schedule_invariant(self, schedule_seed):
        eng = Engine(5, functional=True, schedule_seed=schedule_seed,
                     trace=True)
        run_bcast_collective(PIPELINED_BCAST, eng, 4096, imax=512)
        _assert_clean(eng)

    @pytest.mark.parametrize("schedule_seed", [1, 5, 11])
    def test_allgather_schedule_invariant(self, schedule_seed):
        eng = Engine(5, functional=True, schedule_seed=schedule_seed,
                     trace=True)
        run_allgather_collective(PIPELINED_ALLGATHER, eng, 2048, imax=512)
        _assert_clean(eng)

    @given(
        alg_idx=st.integers(0, len(FUZZ_TARGETS) - 1),
        schedule_seed=st.integers(0, 1 << 30),
        p=st.integers(2, 7),
        s_units=st.integers(1, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_fuzz(self, alg_idx, schedule_seed, p, s_units):
        eng = Engine(p, functional=True, seed=3,
                     schedule_seed=schedule_seed, trace=True)
        run_reduce_collective(FUZZ_TARGETS[alg_idx], eng, 8 * s_units,
                              imax=256)
        _assert_clean(eng)

    def test_bitwise_identical_across_schedules(self):
        """Same inputs, different schedules -> byte-identical output."""
        results = []
        for seed in (None, 17, 23):
            eng = Engine(4, functional=True, seed=11, schedule_seed=seed)
            env = make_env(MA_ALLREDUCE, engine=eng, s=2048, imax=256)
            eng.run(lambda ctx: MA_ALLREDUCE.program(ctx, env))
            results.append(env.recvbufs[0].array().copy())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_timing_mode_under_fuzzing(self):
        """Fuzzed schedules must not deadlock on the machine model."""
        from tests.conftest import TINY

        for seed in (1, 2, 3):
            eng = Engine(8, machine=TINY, functional=False,
                         schedule_seed=seed)
            run_reduce_collective(SOCKET_MA_ALLREDUCE, eng, 32 * 1024,
                                  imax=2048)
