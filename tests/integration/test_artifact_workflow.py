"""End-to-end artifact workflow (docs/artifact_workflow.md), scaled to
test size: verification mode, the priority on/off comparison, and the
expected 'YHCCL wins large messages' outcome."""

import pytest

from repro.library.osu import OSUBenchmark, compare_priorities

KB = 1024
MB = 1 << 20


class TestArtifactC3:
    """Appendix C.3: micro-benchmark workflow."""

    def test_s2_verification_run(self):
        # mpiexec -n 64 ./osu_allreduce -c — scaled to ClusterC/8
        bench = OSUBenchmark("allreduce", nranks=8, machine="ClusterC",
                             validate=True, msg_range=(64 * KB, 256 * KB))
        rows = bench.run()
        assert all(r.validated for r in rows)

    def test_s3_priority_comparison_large_messages(self):
        """Enable vs disable YHCCL: the large-message speedup exists."""
        text = compare_priorities("allreduce", nranks=8,
                                  machine="ClusterC",
                                  msg_range=(1 * MB, 4 * MB))
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        speedups = [float(l.split()[-1]) for l in lines]
        assert all(s > 1.0 for s in speedups), text

    @pytest.mark.parametrize("collective", ["reduce_scatter", "bcast"])
    def test_other_collectives_follow_the_same_flow(self, collective):
        bench = OSUBenchmark(collective, nranks=8, machine="ClusterC",
                             msg_range=(128 * KB, 128 * KB))
        assert bench.run()[0].avg_latency_us > 0


class TestArtifactC4:
    """Appendix C.4: switch the MA / adaptive options."""

    def test_option_variables(self):
        """The artifact edits option variables; here they are config."""
        from repro.collectives.switching import YHCCLConfig, select

        variants = {
            (True, True): "socket-ma-allreduce",
            (False, True): "ma-allreduce",
        }
        for (socket_aware, adaptive), expect in variants.items():
            cfg = YHCCLConfig(socket_aware=socket_aware,
                              adaptive_copy=adaptive)
            sel = select("allreduce", 16 * MB, cfg)
            assert sel.algorithm.name == expect
            assert sel.copy_policy == ("adaptive" if adaptive else "t")


class TestArtifactOverall:
    """Appendix D: 'YHCCL outperforms the competing baselines in most
    test cases ... but in small messages (<= 64 KB) fails to achieve
    satisfying performance' — the library must at least never be
    catastrophically worse at small sizes."""

    def test_small_message_sanity(self):
        text = compare_priorities("allreduce", nranks=8,
                                  machine="ClusterC",
                                  msg_range=(16 * KB, 64 * KB))
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        speedups = [float(l.split()[-1]) for l in lines]
        assert all(s > 0.25 for s in speedups), text
