"""Property-based DAV exactness: for *random* message sizes, rank
counts and slice caps, the simulator's counted traffic equals the
closed-form implementation formulas byte-for-byte.

This is the strongest fidelity contract in the suite: any accounting
slip, mis-sized copy, or duplicated/missing operation in any algorithm
breaks an equality here.
"""

from hypothesis import given, settings, strategies as st

from repro.collectives.common import run_reduce_collective
from repro.collectives.dpml import DPML_ALLREDUCE, DPML_REDUCE, DPML_REDUCE_SCATTER
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.collectives.rg import RGAllreduce, RGReduce
from repro.collectives.ring import RING_ALLREDUCE, RING_REDUCE_SCATTER
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
)
from repro.machine.spec import CacheSpec, MachineSpec, SocketSpec, GB_S
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

KB = 1024


def machine_for(p: int) -> MachineSpec:
    """A 2-socket machine with exactly ``p`` cores (p even)."""
    return MachineSpec(
        name=f"prop{p}",
        sockets=2,
        socket=SocketSpec(
            cores=p // 2,
            l2_per_core=CacheSpec(size=64 * KB),
            l3=CacheSpec(size=1 << 20, inclusive=False),
            mem_bandwidth=10.0 * GB_S,
        ),
    )


CASES = [
    ("reduce_scatter", "ma", MA_REDUCE_SCATTER),
    ("allreduce", "ma", MA_ALLREDUCE),
    ("reduce", "ma", MA_REDUCE),
    ("reduce_scatter", "socket-ma", SOCKET_MA_REDUCE_SCATTER),
    ("allreduce", "socket-ma", SOCKET_MA_ALLREDUCE),
    ("reduce", "socket-ma", SOCKET_MA_REDUCE),
    ("reduce_scatter", "ring", RING_REDUCE_SCATTER),
    ("allreduce", "ring", RING_ALLREDUCE),
    ("reduce_scatter", "dpml", DPML_REDUCE_SCATTER),
    ("allreduce", "dpml", DPML_ALLREDUCE),
    ("reduce", "dpml", DPML_REDUCE),
]


@given(
    case=st.integers(0, len(CASES) - 1),
    p_half=st.integers(1, 4),
    s_units=st.integers(1, 800),
    imax_units=st.integers(8, 64),
)
@settings(max_examples=80, deadline=None)
def test_dav_exact_for_random_shapes(case, p_half, s_units, imax_units):
    kind, name, alg = CASES[case]
    p = 2 * p_half
    s = 8 * s_units
    eng = Engine(p, machine=machine_for(p), functional=False)
    res = run_reduce_collective(alg, eng, s, imax=8 * imax_units)
    assert res.dav == implementation_dav(kind, name, s, p, m=2)


@given(
    p_half=st.integers(1, 4),
    s_units=st.integers(1, 400),
    k=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_rg_dav_exact_for_random_shapes(p_half, s_units, k):
    p = 2 * p_half
    s = 8 * s_units
    for kind, alg in (
        ("allreduce", RGAllreduce(branch=k, slice_size=512)),
        ("reduce", RGReduce(branch=k, slice_size=512)),
    ):
        eng = Engine(p, machine=machine_for(p), functional=False)
        res = run_reduce_collective(alg, eng, s)
        assert res.dav == implementation_dav(kind, "rg", s, p, k=k)
