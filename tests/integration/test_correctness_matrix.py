"""Cross-cutting functional correctness: every algorithm x rank count x
message shape x operator x dtype, plus hypothesis-driven fuzzing of the
whole reduction-collective surface."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.allgather import PIPELINED_ALLGATHER
from repro.collectives.bcast import PIPELINED_BCAST
from repro.collectives.common import (
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)
from repro.collectives.dpml import (
    DPML2_ALLREDUCE,
    DPML_ALLREDUCE,
    DPML_REDUCE,
    DPML_REDUCE_SCATTER,
)
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.collectives.rabenseifner import (
    RABENSEIFNER_ALLREDUCE,
    RABENSEIFNER_REDUCE_SCATTER,
)
from repro.collectives.rg import RG_ALLREDUCE, RG_REDUCE
from repro.collectives.ring import RING_ALLREDUCE, RING_REDUCE_SCATTER
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
)
from repro.sim.engine import Engine

from tests.conftest import TINY

REDUCTION_ALGS = [
    MA_REDUCE_SCATTER, MA_ALLREDUCE, MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER, SOCKET_MA_ALLREDUCE, SOCKET_MA_REDUCE,
    RING_REDUCE_SCATTER, RING_ALLREDUCE,
    RABENSEIFNER_REDUCE_SCATTER, RABENSEIFNER_ALLREDUCE,
    DPML_REDUCE_SCATTER, DPML_ALLREDUCE, DPML_REDUCE, DPML2_ALLREDUCE,
    RG_ALLREDUCE, RG_REDUCE,
]


class TestFullMatrix:
    @pytest.mark.parametrize(
        "alg", REDUCTION_ALGS, ids=[a.name for a in REDUCTION_ALGS]
    )
    @pytest.mark.parametrize("p", [2, 6])
    @pytest.mark.parametrize("s", [96, 4096, 33333 * 8 // 8 * 8])
    def test_reduction_collectives(self, alg, p, s):
        eng = Engine(p, functional=True)
        run_reduce_collective(alg, eng, s, imax=512)

    @pytest.mark.parametrize(
        "alg", REDUCTION_ALGS, ids=[a.name for a in REDUCTION_ALGS]
    )
    def test_on_machine_with_adaptive_policy(self, alg):
        eng = Engine(8, machine=TINY, functional=True)
        run_reduce_collective(alg, eng, 24 * 1024, copy_policy="adaptive",
                              imax=1024)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
    def test_dtypes(self, dtype):
        eng = Engine(4, functional=True, dtype=dtype)
        run_reduce_collective(MA_ALLREDUCE, eng, 4096, imax=512)

    def test_float32_bcast_allgather(self):
        eng = Engine(4, functional=True, dtype=np.float32)
        run_bcast_collective(PIPELINED_BCAST, eng, 4096, imax=512)
        eng = Engine(4, functional=True, dtype=np.float32)
        run_allgather_collective(PIPELINED_ALLGATHER, eng, 2048, imax=512)


class TestHypothesisFuzz:
    @given(
        alg_idx=st.integers(0, len(REDUCTION_ALGS) - 1),
        p=st.integers(2, 7),
        s_units=st.integers(1, 500),
        imax_units=st.integers(8, 128),
        op=st.sampled_from(["sum", "max", "min"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_algorithm_any_shape(self, alg_idx, p, s_units, imax_units,
                                     op):
        alg = REDUCTION_ALGS[alg_idx]
        eng = Engine(p, functional=True)
        run_reduce_collective(alg, eng, 8 * s_units, op=op,
                              imax=8 * imax_units)

    @given(p=st.integers(2, 7), s_units=st.integers(1, 300),
           root=st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_bcast_fuzz(self, p, s_units, root):
        eng = Engine(p, functional=True)
        run_bcast_collective(PIPELINED_BCAST, eng, 8 * s_units,
                             root=root % p, imax=256)


class TestSequentialReuse:
    def test_engine_runs_back_to_back_collectives(self):
        """An application performs many collectives on one engine; sync
        state must not leak between runs."""
        eng = Engine(4, machine=TINY, functional=True)
        for _ in range(3):
            run_reduce_collective(MA_ALLREDUCE, eng, 4096, imax=512)
            run_bcast_collective(PIPELINED_BCAST, eng, 2048, imax=512)

    def test_mixed_algorithms_same_engine(self):
        eng = Engine(6, functional=True)
        for alg in (MA_ALLREDUCE, DPML_ALLREDUCE, RING_ALLREDUCE,
                    RG_ALLREDUCE):
            run_reduce_collective(alg, eng, 4800, imax=512)
