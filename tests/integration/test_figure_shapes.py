"""Fast shape checks of the paper's headline results, run on NodeA-scale
configurations (marked slow where they take seconds).

These mirror what the full benchmark harness measures, at a handful of
points — enough to catch regressions in the reproduced *shapes*:
who wins, roughly by how much, and where crossovers sit.
"""

import pytest

from repro.library.communicator import Communicator
from repro.library.mpi import MPILibrary
from repro.library.yhccl import YHCCL
from repro.machine.spec import NODE_A, MB
from repro.collectives.common import run_reduce_collective
from repro.collectives.dpml import DPML_REDUCE_SCATTER
from repro.collectives.socket_aware import SOCKET_MA_REDUCE_SCATTER
from repro.sim.engine import Engine


@pytest.mark.slow
class TestFigure9Shape:
    """MA reduce-scatter wins over DPML for messages >= 64 KB on NodeA."""

    def test_ma_beats_dpml_large(self):
        s = 8 * MB
        eng1 = Engine(64, machine=NODE_A, functional=False)
        t_ma = run_reduce_collective(SOCKET_MA_REDUCE_SCATTER, eng1, s).time
        eng2 = Engine(64, machine=NODE_A, functional=False)
        t_dpml = run_reduce_collective(DPML_REDUCE_SCATTER, eng2, s).time
        # paper: ~4.2x average on NodeA; require a clear win
        assert t_dpml / t_ma > 1.8

    def test_absolute_time_magnitude(self):
        """Paper Figure 9a: socket-aware MA at 16 MB ~ 6.1 ms on NodeA.
        Accept the right order of magnitude (2x band)."""
        eng = Engine(64, machine=NODE_A, functional=False)
        t = run_reduce_collective(SOCKET_MA_REDUCE_SCATTER, eng, 16 * MB).time
        assert 3e-3 < t < 13e-3


@pytest.mark.slow
class TestFigure12Shape:
    """Adaptive NT stores start paying off past the predicted switch."""

    def test_adaptive_wins_past_switch_point(self):
        comm = Communicator(64, machine=NODE_A, functional=False)
        from repro.collectives.switching import YHCCLConfig

        s = 8 * MB  # well past 2176 KB
        t_adaptive = YHCCL(comm).allreduce(s).time
        comm2 = Communicator(64, machine=NODE_A, functional=False)
        t_plain = YHCCL(
            comm2, config=YHCCLConfig(adaptive_copy=False)
        ).allreduce(s).time
        assert t_adaptive < t_plain

    def test_no_loss_below_switch_point(self):
        comm = Communicator(64, machine=NODE_A, functional=False)
        from repro.collectives.switching import YHCCLConfig

        s = 1 * MB  # below 2176 KB: adaptive == temporal path
        t_adaptive = YHCCL(comm).allreduce(s).time
        comm2 = Communicator(64, machine=NODE_A, functional=False)
        t_plain = YHCCL(
            comm2, config=YHCCLConfig(adaptive_copy=False)
        ).allreduce(s).time
        assert t_adaptive == pytest.approx(t_plain, rel=0.02)


@pytest.mark.slow
class TestFigure15Shape:
    """YHCCL vs vendors at one representative large size."""

    @pytest.mark.parametrize("vendor", ["Open MPI", "MPICH", "MVAPICH2"])
    def test_yhccl_wins_large_allreduce(self, vendor):
        s = 8 * MB
        comm = Communicator(64, machine=NODE_A, functional=False)
        t_y = YHCCL(comm).allreduce(s).time
        comm2 = Communicator(64, machine=NODE_A, functional=False)
        t_v = MPILibrary(comm2, vendor).allreduce(s).time
        assert t_y < t_v

    def test_xpmem_overtakes_on_huge_bcast(self):
        """Figure 15d: past 128 MB (s/p = 2 MB) XPMEM's direct copy
        engages NT stores and overtakes YHCCL's pipelined bcast."""
        comm = Communicator(64, machine=NODE_A, functional=False)
        xp = MPILibrary(comm, "XPMEM")
        y = YHCCL(comm)
        big = 256 * MB
        assert xp.bcast(big).time < y.bcast(big).time

    def test_yhccl_beats_xpmem_on_medium_bcast(self):
        comm = Communicator(64, machine=NODE_A, functional=False)
        xp = MPILibrary(comm, "XPMEM")
        y = YHCCL(comm)
        mid = 16 * MB
        assert y.bcast(mid).time < xp.bcast(mid).time
