"""Section 3.1 formalism tests: constraints, Equation 1's volumes,
Theorem 3.1, and brute-force optimality for small p."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.reduction_tree import (
    NodeRef,
    ReductionTree,
    RNode,
    SliceRef,
    dpml_algorithm,
    dpml_tree,
    enumerate_trees,
    ma_algorithm,
    ma_tree,
    min_copy_volume_bruteforce,
    theorem_3_1_holds,
)


class TestConstraints:
    def test_valid_minimal_tree(self):
        # p=2: one node reducing both slices
        t = ReductionTree([RNode(0, SliceRef(0), SliceRef(1))], p=2)
        assert t.is_valid()

    def test_wrong_node_count(self):
        t = ReductionTree([RNode(0, SliceRef(0), SliceRef(1))], p=3)
        assert any("p-1" in v for v in t.violations())

    def test_identical_operands_rejected(self):
        t = ReductionTree([RNode(0, SliceRef(0), SliceRef(0))], p=2)
        assert not t.is_valid()

    def test_operand_reuse_rejected(self):
        # both nodes consume slice 0 — violates the fourth constraint
        t = ReductionTree(
            [
                RNode(0, SliceRef(0), SliceRef(1)),
                RNode(0, SliceRef(0), SliceRef(2)),
            ],
            p=3,
        )
        assert any("reused" in v for v in t.violations())

    def test_forward_reference_rejected(self):
        t = ReductionTree(
            [
                RNode(0, NodeRef(1), SliceRef(0)),  # self-reference
                RNode(0, SliceRef(1), SliceRef(2)),
            ],
            p=3,
        )
        assert not t.is_valid()

    def test_executor_out_of_range(self):
        t = ReductionTree([RNode(5, SliceRef(0), SliceRef(1))], p=2)
        assert not t.is_valid()

    def test_missing_slice_detected(self):
        t = ReductionTree(
            [
                RNode(0, SliceRef(0), SliceRef(1)),
                RNode(0, NodeRef(1), SliceRef(2)),
            ],
            p=4,  # slice 3 never reduced and node count is wrong
        )
        assert not t.is_valid()


class TestEquation1:
    def test_own_slice_free(self):
        t = ReductionTree([RNode(0, SliceRef(0), SliceRef(1))], p=2)
        # slice 0 belongs to executor 0 (free); slice 1 is foreign (2I)
        assert t.node_copy_volume(1, slice_size=10) == 20

    def test_both_foreign_costs_4i(self):
        t = ReductionTree(
            [
                RNode(2, SliceRef(0), SliceRef(1)),
                RNode(2, NodeRef(1), SliceRef(2)),
            ],
            p=3,
        )
        assert t.node_copy_volume(1, 1) == 4
        assert t.node_copy_volume(2, 1) == 0  # NodeRef + own slice

    def test_shared_memory_operand_free(self):
        t = ReductionTree(
            [
                RNode(0, SliceRef(0), SliceRef(1)),
                RNode(5, NodeRef(1), SliceRef(2)),
            ],
            p=3,
        )
        # node 2: NodeRef free, slice 2 foreign to executor 5
        assert t.node_copy_volume(2, 1) == 2

    def test_reduce_volume(self):
        t = ma_tree(4, 0)
        assert t.reduce_volume(slice_size=10) == 3 * 10 * 3


class TestFormalConstructions:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 16])
    def test_dpml_tree_valid(self, p):
        for i in range(p):
            assert dpml_tree(p, i).is_valid()

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 16])
    def test_ma_tree_valid(self, p):
        for i in range(p):
            assert ma_tree(p, i).is_valid()

    @pytest.mark.parametrize("p", [2, 3, 4, 8])
    def test_dpml_copy_volume_per_equation_1(self, p):
        # Equation 1 charges only *foreign* slices, and the executor of
        # group i owns slice s(i,i): V = 2*I*(p-1) per tree.  (Figure 2a
        # draws all p copy arrows because the real DPML implementation
        # copies whole buffers — the 2*s*p the Table 1 row uses; the
        # paper's own Eq. 1 evaluation is the tighter value tested here.)
        for i in range(p):
            assert dpml_tree(p, i).copy_volume(1) == 2 * (p - 1)

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 16, 64])
    def test_ma_tree_achieves_lower_bound(self, p):
        for i in range(p):
            assert ma_tree(p, i).copy_volume(1) == 2

    def test_ma_algorithm_total(self):
        # V_A' = 2 * I * p = 2 * s (Section 3.2)
        algo = ma_algorithm(8)
        assert algo.is_valid()
        assert algo.copy_volume(1) == 2 * 8

    def test_dpml_algorithm_total(self):
        algo = dpml_algorithm(4)
        assert algo.is_valid()
        assert algo.copy_volume(1) == 2 * 4 * 3  # 2*I*(p-1) per tree

    def test_ma_final_executor_is_owner(self):
        # Figure 6: the last reduction of group i is executed by rank i
        for p in (3, 5, 8):
            for i in range(p):
                tree = ma_tree(p, i)
                assert tree.nodes[-1].r == i

    def test_rejects_bad_group(self):
        with pytest.raises(ValueError):
            ma_tree(4, 4)
        with pytest.raises(ValueError):
            dpml_tree(1, 0)


class TestTheorem31:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8])
    def test_holds_for_constructions(self, p):
        for i in range(p):
            assert theorem_3_1_holds(ma_tree(p, i))
            assert theorem_3_1_holds(dpml_tree(p, i))

    def test_rejects_invalid_tree(self):
        t = ReductionTree([RNode(0, SliceRef(0), SliceRef(0))], p=2)
        with pytest.raises(ValueError):
            theorem_3_1_holds(t)

    @pytest.mark.parametrize("p", [2, 3])
    def test_exhaustive(self, p):
        """Every valid tree satisfies the bound — exhaustively."""
        count = 0
        for tree in enumerate_trees(p):
            assert tree.copy_volume(1) >= 2
            count += 1
        assert count > 0

    @given(st.integers(2, 4), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_random_valid_trees_satisfy_bound(self, p, rnd):
        """Property: randomly sampled valid trees obey Theorem 3.1."""
        pool = [SliceRef(x) for x in range(p)]
        nodes = []
        for j in range(1, p):
            a = pool.pop(rnd.randrange(len(pool)))
            b = pool.pop(rnd.randrange(len(pool)))
            r = rnd.randrange(p)
            nodes.append(RNode(r, a, b))
            pool.append(NodeRef(j))
        tree = ReductionTree(nodes, p)
        assert tree.is_valid()
        assert theorem_3_1_holds(tree)


class TestBruteForceOptimality:
    @pytest.mark.parametrize("p", [2, 3])
    def test_minimum_is_2i(self, p):
        assert min_copy_volume_bruteforce(p, 1) == 2

    def test_ma_is_optimal_p3(self):
        best = min_copy_volume_bruteforce(3, 1)
        assert ma_tree(3, 0).copy_volume(1) == best
