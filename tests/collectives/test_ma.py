"""Movement-avoiding collective tests: functional correctness across
shapes, DAV exactness, schedule structure (Figure 6) and sync counts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024
ALGS = {
    "reduce_scatter": MA_REDUCE_SCATTER,
    "allreduce": MA_ALLREDUCE,
    "reduce": MA_REDUCE,
}


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("kind", list(ALGS))
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_small_messages(self, kind, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(ALGS[kind], eng, 512, imax=128)

    @pytest.mark.parametrize("kind", list(ALGS))
    def test_multi_round_pipeline(self, kind):
        # s >> p * I forces many window rounds
        eng = Engine(4, functional=True)
        run_reduce_collective(ALGS[kind], eng, 64 * KB, imax=256)

    @pytest.mark.parametrize("op", ["sum", "prod", "max", "min"])
    def test_all_operators(self, op):
        eng = Engine(4, functional=True)
        run_reduce_collective(MA_ALLREDUCE, eng, 4 * KB, op=op, imax=512)

    def test_nonzero_root(self):
        eng = Engine(5, functional=True)
        run_reduce_collective(MA_REDUCE, eng, 4 * KB, root=3, imax=512)

    def test_ragged_message(self):
        # s not divisible by p
        eng = Engine(6, functional=True)
        run_reduce_collective(MA_REDUCE_SCATTER, eng, 1000, imax=128)

    @given(
        p=st.integers(2, 6),
        s_units=st.integers(1, 600),
        imax_units=st.integers(8, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_random_shapes(self, p, s_units, imax_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(
            MA_ALLREDUCE, eng, 8 * s_units, imax=8 * imax_units
        )

    def test_timed_and_functional_agree(self):
        # attaching a machine model must not change results
        eng = Engine(8, machine=TINY, functional=True)
        run_reduce_collective(MA_ALLREDUCE, eng, 16 * KB, imax=KB)


class TestDAV:
    @pytest.mark.parametrize("kind,name", [
        ("reduce_scatter", "ma"),
        ("allreduce", "ma"),
        ("reduce", "ma"),
    ])
    @pytest.mark.parametrize("s", [8 * KB, 64 * KB, 1000 * 8])
    def test_exact_formula(self, kind, name, s):
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(ALGS[kind], eng, s, imax=KB)
        assert res.dav == implementation_dav(kind, name, s, 8)

    def test_copy_volume_is_lower_bound(self):
        """Only 2s bytes of pure copy during the reduce-scatter — the
        Theorem 3.1 bound realized (copies tracked via the trace)."""
        eng = Engine(4, machine=TINY, functional=False, trace=True)
        s = 32 * KB
        run_reduce_collective(MA_REDUCE_SCATTER, eng, s, imax=KB)
        assert eng.trace.copy_bytes() == s  # one s-worth copied in (=2s DAV)


class TestScheduleStructure:
    def test_figure6_step_assignment(self):
        """p=3: rank a/b/c copies slice 2/3/1 (0-indexed: 1/2/0), per
        Figure 6's step S0."""
        eng = Engine(3, functional=True, trace=True)
        s = 240  # 3 slices of 80
        run_reduce_collective(MA_REDUCE_SCATTER, eng, s, imax=s)
        copies = [r for r in eng.trace if r.kind == "copy"]
        assert len(copies) == 3
        by_rank = {c.rank: c for c in copies}
        # rank r copies slice (r+1) mod p: verify via the shm offsets
        # recorded in trace destinations (same buffer, so check sizes)
        assert all(c.dst.startswith("shm") for c in by_rank.values())

    def test_sync_count_per_round(self):
        """p-1 chain waits per rank per round (plus RS consumed waits)."""
        p, rounds = 4, 3
        eng = Engine(p, machine=TINY, functional=False)
        imax = KB
        s = p * imax * rounds
        res = run_reduce_collective(MA_REDUCE_SCATTER, eng, s, imax=imax)
        chain_syncs = p * (p - 1) * rounds
        # consumed waits add at most one per slice per round
        assert chain_syncs <= res.sync_count <= chain_syncs + p * rounds

    def test_window_shm_footprint(self):
        """Shared memory stays at p*I bytes regardless of message size."""
        eng = Engine(4, functional=False, machine=TINY)
        from repro.collectives.common import make_env

        env = make_env(MA_ALLREDUCE, engine=eng, s=1 << 20, imax=KB)
        assert env.shm.nbytes == 4 * KB


class TestNTPolicyIntegration:
    def test_adaptive_copyout_uses_nt_when_working_set_large(self):
        eng = Engine(8, machine=TINY, functional=False, trace=True)
        s = 4 << 20  # W = 2sp >> TINY cache (1.25 MB)
        run_reduce_collective(MA_ALLREDUCE, eng, s, copy_policy="adaptive",
                              imax=64 * KB)
        nt_bytes = eng.trace.copy_bytes(nt=True)
        t_bytes = eng.trace.copy_bytes(nt=False)
        # copy-outs (s per rank) NT, copy-ins (s total) temporal
        assert nt_bytes == 8 * s
        assert t_bytes == s

    def test_adaptive_small_message_stays_temporal(self):
        eng = Engine(8, machine=TINY, functional=False, trace=True)
        run_reduce_collective(MA_ALLREDUCE, eng, 8 * KB,
                              copy_policy="adaptive", imax=KB)
        assert eng.trace.copy_bytes(nt=True) == 0

    def test_nt_policy_lowers_large_message_time(self):
        s = 4 << 20
        times = {}
        for pol in ("t", "adaptive"):
            eng = Engine(8, machine=TINY, functional=False)
            times[pol] = run_reduce_collective(
                MA_ALLREDUCE, eng, s, copy_policy=pol, imax=64 * KB
            ).time
        assert times["adaptive"] < times["t"]
