"""Pipelined all-gather (Algorithm 4) tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.allgather import PIPELINED_ALLGATHER
from repro.collectives.common import make_env, run_allgather_collective
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestFunctional:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_correctness(self, p):
        eng = Engine(p, functional=True)
        run_allgather_collective(PIPELINED_ALLGATHER, eng, 4 * KB, imax=512)

    def test_single_slice(self):
        eng = Engine(4, functional=True)
        run_allgather_collective(PIPELINED_ALLGATHER, eng, 256, imax=KB)

    def test_ragged(self):
        eng = Engine(3, functional=True)
        run_allgather_collective(PIPELINED_ALLGATHER, eng, 1000, imax=384)

    @given(p=st.integers(2, 6), s_units=st.integers(1, 200))
    @settings(max_examples=20, deadline=None)
    def test_property(self, p, s_units):
        eng = Engine(p, functional=True)
        run_allgather_collective(PIPELINED_ALLGATHER, eng, 8 * s_units,
                                 imax=256)


class TestDAVAndStructure:
    def test_dav(self):
        """Copy-in 2sp, copy-out 2sp^2 (every rank copies all slots)."""
        s = 8 * KB
        p = 4
        eng = Engine(p, machine=TINY, functional=False)
        res = run_allgather_collective(PIPELINED_ALLGATHER, eng, s, imax=KB)
        assert res.traffic.dav == 2 * s * p + 2 * s * p * p

    def test_work_set_formula(self):
        # Algorithm 4 line 2: W = s*p + s*p^2 + 2*p*I
        eng = Engine(4, functional=False, machine=TINY)
        s, imax = 16 * KB, 2 * KB
        env = make_env(PIPELINED_ALLGATHER, engine=eng, s=s, imax=imax,
                       recv_factor=4)
        assert env.work_set == s * 4 + s * 16 + 2 * 4 * imax

    def test_adaptive_engages_nt_early(self):
        """W grows with p^2, so NT engages at much smaller s than bcast."""
        eng = Engine(8, machine=TINY, functional=False, trace=True)
        s = 64 * KB  # W ~ s*p^2 = 4 MB > 1.25 MB cache
        run_allgather_collective(PIPELINED_ALLGATHER, eng, s,
                                 copy_policy="adaptive", imax=8 * KB)
        assert eng.trace.copy_bytes(nt=True) > 0

    def test_recvbuf_is_p_times_s(self):
        eng = Engine(4, functional=True)
        from repro.collectives.common import make_env as me

        env = me(PIPELINED_ALLGATHER, engine=eng, s=1024, recv_factor=4)
        assert env.recvbufs[0].nbytes == 4096
