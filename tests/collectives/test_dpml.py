"""DPML multi-leader reduction tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import run_reduce_collective
from repro.collectives.dpml import (
    DPML2_ALLREDUCE,
    DPML_ALLREDUCE,
    DPML_REDUCE,
    DPML_REDUCE_SCATTER,
)
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024
ALGS = {
    "reduce_scatter": DPML_REDUCE_SCATTER,
    "allreduce": DPML_ALLREDUCE,
    "reduce": DPML_REDUCE,
}


class TestFunctional:
    @pytest.mark.parametrize("kind", list(ALGS))
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_correctness(self, kind, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(ALGS[kind], eng, 960)

    @pytest.mark.parametrize("p", [1, 2, 4, 6, 7])
    def test_two_level_correctness(self, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(DPML2_ALLREDUCE, eng, 8 * 150)

    def test_two_level_with_machine(self):
        eng = Engine(8, machine=TINY, functional=True)
        run_reduce_collective(DPML2_ALLREDUCE, eng, 16 * KB)

    def test_nonzero_root(self):
        eng = Engine(5, functional=True)
        run_reduce_collective(DPML_REDUCE, eng, 4 * KB, root=2)

    @given(p=st.integers(2, 7), s_units=st.integers(1, 300))
    @settings(max_examples=20, deadline=None)
    def test_property(self, p, s_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(DPML_ALLREDUCE, eng, 8 * s_units)


class TestDAV:
    @pytest.mark.parametrize("kind", list(ALGS))
    def test_formula(self, kind):
        s = 32 * KB
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(ALGS[kind], eng, s)
        assert res.dav == implementation_dav(kind, "dpml", s, 8)

    def test_copy_in_is_whole_buffers(self):
        """DPML's defining redundancy: 2sp copy-in (Figure 2a)."""
        eng = Engine(4, machine=TINY, functional=False, trace=True)
        s = 16 * KB
        run_reduce_collective(DPML_REDUCE_SCATTER, eng, s)
        copy_in = sum(
            r.nbytes for r in eng.trace
            if r.kind == "copy" and r.src.startswith("send")
        )
        assert copy_in == 4 * s


class TestLowSynchronization:
    def test_barrier_count_constant_in_p(self):
        """DPML's advantage: 2 barriers regardless of p (Section 5.1)."""
        for p in (4, 8):
            eng = Engine(p, machine=TINY, functional=False)
            res = run_reduce_collective(DPML_REDUCE_SCATTER, eng, 8 * KB)
            assert res.sync_count == 1  # one node barrier (RS copies out)

    def test_dpml_beats_ma_on_small_messages(self):
        from repro.collectives.ma import MA_ALLREDUCE

        s = 2 * KB  # sync-dominated regime: many MA rounds of tiny slices
        eng1 = Engine(8, machine=TINY, functional=False)
        t_dpml = run_reduce_collective(DPML2_ALLREDUCE, eng1, s).time
        eng2 = Engine(8, machine=TINY, functional=False)
        t_ma = run_reduce_collective(MA_ALLREDUCE, eng2, s, imax=64).time
        assert t_dpml < t_ma

    def test_ma_beats_dpml_on_large_messages(self):
        from repro.collectives.ma import MA_ALLREDUCE

        s = 2 << 20
        eng1 = Engine(8, machine=TINY, functional=False)
        t_dpml = run_reduce_collective(DPML_ALLREDUCE, eng1, s).time
        eng2 = Engine(8, machine=TINY, functional=False)
        t_ma = run_reduce_collective(MA_ALLREDUCE, eng2, s,
                                     imax=64 * KB).time
        assert t_ma < t_dpml
