"""Operator registry + order-preserving collective tests.

The headline property: with a non-commutative operator, the ordered
chain matches the rank-order left-fold oracle exactly, while the
reordering algorithms (MA) genuinely do not — the routing layer must
therefore pick the chain.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.ops import (
    ReduceOp,
    get_op,
    is_commutative,
    op_names,
    register_op,
)
from repro.collectives.ordered import (
    ORDERED_ALLREDUCE,
    ORDERED_REDUCE,
    ORDERED_REDUCE_SCATTER,
)
from repro.collectives.switching import select
from repro.sim.engine import Engine

from tests.conftest import TINY

ALGS = [ORDERED_REDUCE_SCATTER, ORDERED_ALLREDUCE, ORDERED_REDUCE]


class TestOpRegistry:
    def test_predefined_ops(self):
        assert {"sum", "prod", "max", "min", "sub"} <= set(op_names())
        assert is_commutative("sum")
        assert not is_commutative("sub")

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown reduction op"):
            get_op("xor")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_op("sum", np.add)

    def test_register_custom(self):
        op = register_op("test-avg2", lambda a, b, out=None: np.add(
            a, b, out=out), commutative=True, replace=True)
        assert isinstance(op, ReduceOp)
        assert get_op("test-avg2") is op

    def test_callable(self):
        out = get_op("sub")(np.array([5.0]), np.array([2.0]))
        assert out[0] == 3.0


class TestOrderedCorrectness:
    """run_reduce_collective's oracle is a rank-order left fold — for
    `sub` only an order-preserving algorithm can match it."""

    @pytest.mark.parametrize("alg", ALGS, ids=[a.name for a in ALGS])
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_sub_matches_left_fold(self, alg, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(alg, eng, 960, op="sub", imax=128)

    @pytest.mark.parametrize("alg", ALGS, ids=[a.name for a in ALGS])
    def test_commutative_ops_also_work(self, alg):
        eng = Engine(4, functional=True)
        run_reduce_collective(alg, eng, 4096, op="sum", imax=512)

    def test_ma_gets_sub_wrong(self):
        """Negative control: the MA reordering genuinely breaks `sub`."""
        eng = Engine(4, functional=True)
        with pytest.raises(AssertionError):
            run_reduce_collective(MA_ALLREDUCE, eng, 4096, op="sub",
                                  imax=512)

    @given(p=st.integers(2, 6), s_units=st.integers(1, 300))
    @settings(max_examples=25, deadline=None)
    def test_property_sub_left_fold(self, p, s_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(ORDERED_ALLREDUCE, eng, 8 * s_units,
                              op="sub", imax=256)

    def test_schedule_fuzzing_ordered(self):
        for seed in (3, 17, 91):
            eng = Engine(5, functional=True, schedule_seed=seed)
            run_reduce_collective(ORDERED_ALLREDUCE, eng, 4096, op="sub",
                                  imax=256)


class TestRouting:
    def test_non_commutative_routes_to_ordered(self):
        for kind, expect in (
            ("allreduce", "ordered-allreduce"),
            ("reduce", "ordered-reduce"),
            ("reduce_scatter", "ordered-reduce-scatter"),
        ):
            sel = select(kind, 16 << 20, op="sub")
            assert sel.algorithm.name == expect
            assert "non-commutative" in sel.reason

    def test_commutative_keeps_fast_path(self):
        sel = select("allreduce", 16 << 20, op="sum")
        assert sel.algorithm.name == "socket-ma-allreduce"

    def test_yhccl_facade_end_to_end(self):
        from repro.library.communicator import Communicator
        from repro.library.yhccl import YHCCL

        comm = Communicator(4, machine=TINY, functional=True)
        r = YHCCL(comm).allreduce(8 * 1024, op="sub")
        assert r.algorithm == "ordered-allreduce"


class TestOrderedTiming:
    def test_pipeline_beats_nonpipelined_chain(self):
        """Slice pipelining: many slices finish far faster than one
        monolithic chain pass."""
        s = 1 << 20
        eng1 = Engine(8, machine=TINY, functional=False)
        piped = run_reduce_collective(ORDERED_ALLREDUCE, eng1, s,
                                      imax=16 * 1024).time
        eng2 = Engine(8, machine=TINY, functional=False)
        serial = run_reduce_collective(ORDERED_ALLREDUCE, eng2, s,
                                       imax=s).time
        assert piped < serial

    def test_dav_matches_derivation(self):
        """DAV = s(3p-1) for the chain RS, + 2sp copy-out for allreduce."""
        s, p = 64 * 1024, 8
        eng = Engine(p, machine=TINY, functional=False)
        rs = run_reduce_collective(ORDERED_REDUCE_SCATTER, eng, s,
                                   imax=4 * 1024)
        assert rs.dav == s * (3 * p - 1) + 2 * s  # + block copy-out
        eng = Engine(p, machine=TINY, functional=False)
        ar = run_reduce_collective(ORDERED_ALLREDUCE, eng, s, imax=4 * 1024)
        assert ar.dav == s * (3 * p - 1) + 2 * s * p
