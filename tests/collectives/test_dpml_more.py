"""DPML simulation-granularity cap behaviour."""

from repro.collectives.dpml import MAX_BLOCKS, REDUCE_BLOCK, _blocks


class TestBlockCap:
    def test_small_partitions_use_paper_block(self):
        blocks = _blocks(0, 4 * REDUCE_BLOCK)
        assert len(blocks) == 4
        assert all(n == REDUCE_BLOCK for _, n in blocks)

    def test_large_partitions_capped(self):
        blocks = _blocks(0, 1 << 26)  # 64 MB partition
        assert len(blocks) <= MAX_BLOCKS
        assert sum(n for _, n in blocks) == 1 << 26

    def test_empty(self):
        assert _blocks(0, 0) == []

    def test_offsets_contiguous(self):
        blocks = _blocks(128, 100000)
        assert blocks[0][0] == 128
        for (o1, n1), (o2, _) in zip(blocks, blocks[1:]):
            assert o1 + n1 == o2
