"""m > 2 sockets: correctness, DAV formulas and NUMA behaviour of the
socket-aware designs on a 4-socket machine (NodeD) — the paper's
"future architectures" discussion, exercised."""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.dpml import DPML2_ALLREDUCE
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
    socket_groups,
)
from repro.collectives.common import make_env
from repro.machine.spec import NODE_D, KB
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

ALGS = {
    "reduce_scatter": SOCKET_MA_REDUCE_SCATTER,
    "allreduce": SOCKET_MA_ALLREDUCE,
    "reduce": SOCKET_MA_REDUCE,
}


class TestFourSocketTopology:
    def test_preset_shape(self):
        assert NODE_D.sockets == 4 and NODE_D.total_cores == 64

    def test_groups_follow_sockets(self):
        eng = Engine(16, machine=NODE_D, functional=False)
        env = make_env(SOCKET_MA_ALLREDUCE, engine=eng, s=1024)
        groups = socket_groups(env)
        assert len(groups) == 4
        assert [len(g) for g in groups] == [4, 4, 4, 4]


class TestFourSocketCorrectness:
    @pytest.mark.parametrize("kind", list(ALGS))
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_functional(self, kind, p):
        eng = Engine(p, machine=NODE_D, functional=True)
        run_reduce_collective(ALGS[kind], eng, 16 * KB, imax=KB)

    def test_uneven_socket_population(self):
        # 10 ranks over 4 sockets: 3+3+2+2 groups
        eng = Engine(10, machine=NODE_D, functional=True)
        run_reduce_collective(SOCKET_MA_ALLREDUCE, eng, 10 * KB, imax=KB)

    def test_functional_m4_without_machine(self):
        eng = Engine(8, functional=True)
        run_reduce_collective(SOCKET_MA_ALLREDUCE, eng, 8 * KB,
                              imax=KB, params={"sockets": 4})


class TestFourSocketDAV:
    @pytest.mark.parametrize("kind", list(ALGS))
    def test_formula_with_m4(self, kind):
        s = 64 * KB
        eng = Engine(16, machine=NODE_D, functional=False)
        res = run_reduce_collective(ALGS[kind], eng, s, imax=KB)
        assert res.dav == implementation_dav(kind, "socket-ma", s, 16, m=4)

    def test_dav_grows_with_m_but_stays_below_dpml(self):
        from repro.models.dav import dav_allreduce

        s = 1 << 20
        for p in (16, 64):
            d2 = dav_allreduce("socket-ma", s, p, m=2)
            d4 = dav_allreduce("socket-ma", s, p, m=4)
            assert d2 < d4 < dav_allreduce("dpml", s, p)


class TestFourSocketBehaviour:
    def test_level1_numa_locality(self):
        """Level-1 traffic stays intra-socket on 4 sockets too."""
        eng = Engine(16, machine=NODE_D, functional=False)
        s = 64 * KB
        res = run_reduce_collective(SOCKET_MA_REDUCE_SCATTER, eng, s,
                                    imax=2 * KB)
        # numa_bytes already includes cache-to-cache transfers; level 2
        # reads (m-1) = 3 foreign segments of s bytes in total
        assert res.traffic.numa_bytes <= 3.5 * s

    def test_two_level_dpml_with_m4(self):
        eng = Engine(16, machine=NODE_D, functional=True)
        run_reduce_collective(DPML2_ALLREDUCE, eng, 16 * KB)
