"""Collective infrastructure tests: partitioning, slice rule, env."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import (
    CollectiveEnv,
    compute_slice_size,
    make_env,
    partition,
    subslices,
    IMIN_DEFAULT,
)
from repro.collectives.ma import MA_ALLREDUCE
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestPartition:
    def test_even_split(self):
        parts = partition(64, 4)
        assert parts == [(0, 16), (16, 16), (32, 16), (48, 16)]

    def test_ragged_split_sums_to_total(self):
        parts = partition(100, 3)
        assert sum(n for _, n in parts) == 100
        assert parts[0][0] == 0
        for (o1, n1), (o2, _) in zip(parts, parts[1:]):
            assert o1 + n1 == o2

    def test_alignment(self):
        parts = partition(1000, 7)
        for off, n in parts[:-1]:
            assert off % 8 == 0 and n % 8 == 0

    def test_more_parts_than_units(self):
        parts = partition(16, 5)
        assert sum(n for _, n in parts) == 16
        assert any(n == 0 for _, n in parts)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            partition(10, 0)
        with pytest.raises(ValueError):
            partition(-1, 2)

    @given(st.integers(0, 1 << 20), st.integers(1, 128))
    @settings(max_examples=100, deadline=None)
    def test_property_contiguous_cover(self, total, parts):
        ps = partition(total, parts)
        assert len(ps) == parts
        off = 0
        for o, n in ps:
            assert o == off and n >= 0
            off += n
        assert off == total


class TestSliceSizeRule:
    def test_paper_rule(self):
        # I = max(min(s/p, Imax), Imin)
        assert compute_slice_size(64 * KB, 64, imax=256 * KB) == IMIN_DEFAULT * 16
        assert compute_slice_size(256 * KB * 64, 64, imax=256 * KB) == 256 * KB
        assert compute_slice_size(1 << 30, 64, imax=256 * KB) == 256 * KB

    def test_minimum_is_cache_line(self):
        assert compute_slice_size(64, 64) == IMIN_DEFAULT

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            compute_slice_size(0, 4)

    @given(st.integers(1, 1 << 28), st.integers(1, 128))
    @settings(max_examples=100, deadline=None)
    def test_property_bounds(self, s, p):
        i = compute_slice_size(s, p)
        assert IMIN_DEFAULT <= i <= max(256 * KB, IMIN_DEFAULT)
        assert i % 8 == 0


class TestSubslices:
    def test_exact_division(self):
        assert subslices(0, 64, 16) == [(0, 16), (16, 16), (32, 16), (48, 16)]

    def test_remainder_tail(self):
        assert subslices(8, 20, 16) == [(8, 16), (24, 4)]

    def test_empty_range(self):
        assert subslices(0, 0, 16) == []

    def test_rejects_bad_slice(self):
        with pytest.raises(ValueError):
            subslices(0, 16, 0)


class TestCollectiveEnv:
    def test_rejects_unknown_op(self):
        eng = Engine(2, functional=True)
        with pytest.raises(ValueError):
            CollectiveEnv(engine=eng, sendbufs=[], recvbufs=[], shm=None,
                          s=8, p=2, op="xor")

    def test_policy_resolution(self):
        eng = Engine(2, machine=TINY, functional=False)
        env = make_env(MA_ALLREDUCE, engine=eng, s=1024, copy_policy="nt")
        assert env.use_nt(8, t_flag=False) is True
        env.copy_policy = "t"
        assert env.use_nt(1 << 30, t_flag=True) is False

    def test_adaptive_uses_machine_capacity(self):
        eng = Engine(2, machine=TINY, functional=False)
        env = make_env(MA_ALLREDUCE, engine=eng, s=1024,
                       copy_policy="adaptive")
        assert env.cache_capacity == TINY.socket.l3.size + 2 * 64 * KB

    def test_unknown_policy_raises(self):
        eng = Engine(2, functional=True)
        env = make_env(MA_ALLREDUCE, engine=eng, s=1024)
        env.copy_policy = "weird"
        with pytest.raises(ValueError):
            env.use_nt(8, t_flag=True)

    def test_make_env_buffers(self):
        eng = Engine(3, functional=True)
        env = make_env(MA_ALLREDUCE, engine=eng, s=240)
        assert len(env.sendbufs) == 3 and len(env.recvbufs) == 3
        assert env.shm.nbytes == MA_ALLREDUCE.shm_bytes(env)
        # send buffers hold distinct random data
        assert not np.array_equal(env.sendbufs[0].array(),
                                  env.sendbufs[1].array())
