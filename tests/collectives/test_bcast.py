"""Pipelined broadcast (Algorithm 3) tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.bcast import PIPELINED_BCAST
from repro.collectives.common import make_env, run_bcast_collective
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestFunctional:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_correctness(self, p):
        eng = Engine(p, functional=True)
        run_bcast_collective(PIPELINED_BCAST, eng, 4 * KB, imax=512)

    def test_single_slice_message(self):
        eng = Engine(4, functional=True)
        run_bcast_collective(PIPELINED_BCAST, eng, 256, imax=KB)

    def test_nonzero_root(self):
        eng = Engine(5, functional=True)
        run_bcast_collective(PIPELINED_BCAST, eng, 4 * KB, root=3, imax=512)

    def test_ragged_slices(self):
        eng = Engine(3, functional=True)
        run_bcast_collective(PIPELINED_BCAST, eng, 1000, imax=384)

    @given(p=st.integers(2, 8), s_units=st.integers(1, 400),
           root=st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_property(self, p, s_units, root):
        eng = Engine(p, functional=True)
        run_bcast_collective(PIPELINED_BCAST, eng, 8 * s_units,
                             root=root % p, imax=256)


class TestDAVAndStructure:
    def test_dav(self):
        """Root copies s in; p-1 ranks copy s out: DAV = 2s + 2s(p-1)."""
        s = 16 * KB
        p = 8
        eng = Engine(p, machine=TINY, functional=False)
        res = run_bcast_collective(PIPELINED_BCAST, eng, s, imax=KB)
        assert res.traffic.dav == 2 * s + 2 * s * (p - 1)

    def test_double_buffered_shm(self):
        eng = Engine(4, functional=False, machine=TINY)
        env = make_env(PIPELINED_BCAST, engine=eng, s=1 << 20, imax=4 * KB)
        assert env.shm.nbytes == 2 * 4 * KB

    def test_work_set_formula(self):
        # Algorithm 3 line 2: W = s + s*(p-1) + 2*I
        eng = Engine(4, functional=False, machine=TINY)
        s, imax = 64 * KB, 4 * KB
        env = make_env(PIPELINED_BCAST, engine=eng, s=s, imax=imax)
        assert env.work_set == s + s * 3 + 2 * imax

    def test_adaptive_copyout_nt_on_large(self):
        eng = Engine(8, machine=TINY, functional=False, trace=True)
        s = 2 << 20  # W = s*p >> TINY cache
        run_bcast_collective(PIPELINED_BCAST, eng, s,
                             copy_policy="adaptive", imax=64 * KB)
        # all copy-outs NT, all root copy-ins temporal
        assert eng.trace.copy_bytes(nt=True) == 7 * s
        assert eng.trace.copy_bytes(nt=False) == s

    def test_pipeline_overlaps_root_and_readers(self):
        """With many slices, completion time is far below the serial
        (copy-in then copy-out) sum."""
        s = 1 << 20
        eng = Engine(8, machine=TINY, functional=False)
        piped = run_bcast_collective(PIPELINED_BCAST, eng, s,
                                     imax=16 * KB).time
        eng2 = Engine(8, machine=TINY, functional=False)
        serial = run_bcast_collective(PIPELINED_BCAST, eng2, s, imax=s).time
        assert piped < serial
