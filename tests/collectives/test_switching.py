"""YHCCL algorithm-switching tests (Section 5.1)."""

import pytest

from repro.collectives.switching import (
    SMALL_THRESHOLD,
    Selection,
    YHCCLConfig,
    select,
)

KB = 1024


class TestSelection:
    def test_small_allreduce_uses_two_level_dpml(self):
        sel = select("allreduce", 64 * KB)
        assert sel.algorithm.name == "dpml2-allreduce"

    def test_threshold_boundary(self):
        at = select("allreduce", SMALL_THRESHOLD)
        above = select("allreduce", SMALL_THRESHOLD + 8)
        assert at.algorithm.name == "dpml2-allreduce"
        assert above.algorithm.name == "socket-ma-allreduce"

    @pytest.mark.parametrize("kind,expect", [
        ("allreduce", "socket-ma-allreduce"),
        ("reduce", "socket-ma-reduce"),
        ("reduce_scatter", "socket-ma-reduce-scatter"),
    ])
    def test_large_uses_socket_aware_ma(self, kind, expect):
        sel = select(kind, 16 << 20)
        assert sel.algorithm.name == expect

    def test_socket_aware_disabled_falls_to_plain_ma(self):
        cfg = YHCCLConfig(socket_aware=False)
        sel = select("allreduce", 16 << 20, cfg)
        assert sel.algorithm.name == "ma-allreduce"

    @pytest.mark.parametrize("kind", ["bcast", "allgather"])
    def test_pipelined_kinds(self, kind):
        sel = select(kind, 1 << 20)
        assert sel.algorithm.name.startswith("pipelined")

    def test_adaptive_policy_default(self):
        assert select("allreduce", 1 << 20).copy_policy == "adaptive"

    def test_policy_follows_config(self):
        cfg = YHCCLConfig(adaptive_copy=False)
        assert select("allreduce", 1 << 20, cfg).copy_policy == "t"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            select("alltoall", 1024)

    def test_selection_carries_reason(self):
        sel = select("allreduce", 1024)
        assert isinstance(sel, Selection)
        assert "small" in sel.reason
