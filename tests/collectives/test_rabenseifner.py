"""Rabenseifner recursive-halving tests, incl. non-power-of-two ranks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import run_reduce_collective
from repro.collectives.rabenseifner import (
    Plan,
    RABENSEIFNER_ALLREDUCE,
    RABENSEIFNER_REDUCE_SCATTER,
    participant_range,
)
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestPlan:
    def test_power_of_two_identity(self):
        plan = Plan(8)
        assert plan.pof2 == 8 and plan.rem == 0
        assert [plan.newrank[r] for r in range(8)] == list(range(8))

    def test_non_power_of_two_folds_odds(self):
        plan = Plan(6)  # pof2=4, rem=2: ranks 0-3 pair up
        assert plan.pof2 == 4 and plan.rem == 2
        assert plan.newrank[1] == -1 and plan.newrank[3] == -1
        assert plan.newrank[0] == 0 and plan.newrank[2] == 1
        assert plan.newrank[4] == 2 and plan.newrank[5] == 3

    def test_oldrank_roundtrip(self):
        for p in (5, 6, 7, 12, 48):
            plan = Plan(p)
            for r in range(p):
                nr = plan.newrank[r]
                if nr >= 0:
                    assert plan.oldrank(nr) == r


class TestParticipantRanges:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_ranges_partition_message(self, p):
        plan = Plan(p)
        s = 8 * 128
        ranges = [participant_range(plan, nr, s) for nr in range(plan.pof2)]
        ranges.sort()
        assert ranges[0][0] == 0 and ranges[-1][1] == s
        for (l1, h1), (l2, _) in zip(ranges, ranges[1:]):
            assert h1 == l2

    def test_ranges_disjoint_nonpow2(self):
        plan = Plan(6)
        s = 1024
        covered = set()
        for nr in range(plan.pof2):
            lo, hi = participant_range(plan, nr, s)
            r = set(range(lo, hi))
            assert not (covered & r)
            covered |= r
        assert covered == set(range(s))


class TestFunctional:
    @pytest.mark.parametrize("alg", [RABENSEIFNER_REDUCE_SCATTER,
                                     RABENSEIFNER_ALLREDUCE])
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 7, 8, 12])
    def test_correctness(self, alg, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(alg, eng, 8 * 120)

    @pytest.mark.parametrize("op", ["sum", "max", "prod"])
    def test_operators(self, op):
        eng = Engine(4, functional=True)
        run_reduce_collective(RABENSEIFNER_ALLREDUCE, eng, 4 * KB, op=op)

    @given(p=st.integers(2, 9), s_units=st.integers(2, 300))
    @settings(max_examples=25, deadline=None)
    def test_property(self, p, s_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(RABENSEIFNER_ALLREDUCE, eng, 8 * s_units)


class TestDAV:
    def test_pow2_reduce_scatter_close_to_formula(self):
        s = 32 * KB
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(RABENSEIFNER_REDUCE_SCATTER, eng, s)
        assert res.dav == implementation_dav("reduce_scatter",
                                             "rabenseifner", s, 8)

    def test_pow2_allreduce_close_to_formula(self):
        s = 32 * KB
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(RABENSEIFNER_ALLREDUCE, eng, s)
        assert res.dav == implementation_dav("allreduce", "rabenseifner",
                                             s, 8)


class TestLatencyAdvantage:
    def test_log_sync_steps(self):
        """Rabenseifner's sync count grows ~logarithmically — its win
        over ring on small messages (Section 5.3)."""
        counts = {}
        for p in (4, 8):
            eng = Engine(p, machine=TINY, functional=False)
            counts[p] = run_reduce_collective(
                RABENSEIFNER_REDUCE_SCATTER, eng, 8 * KB
            ).sync_count
        # total waits = p * log2(p): 4*2=8 and 8*3=24 — not quadratic
        assert counts[4] == 8 and counts[8] == 24

    def test_beats_ma_on_tiny_messages(self):
        from repro.collectives.ma import MA_ALLREDUCE

        s = 2 * KB
        eng1 = Engine(8, machine=TINY, functional=False)
        t_rab = run_reduce_collective(RABENSEIFNER_ALLREDUCE, eng1, s).time
        eng2 = Engine(8, machine=TINY, functional=False)
        t_ma = run_reduce_collective(MA_ALLREDUCE, eng2, s, imax=256).time
        assert t_rab < t_ma
