"""Vector collective tests: reduce_scatter with arbitrary counts and
allgatherv, including zero blocks and hypothesis-random shapes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.vector import (
    counts_to_partition,
    run_allgather_v,
    run_reduce_scatter_v,
)
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestCountValidation:
    def test_wrong_count_length(self):
        eng = Engine(4, functional=True)
        with pytest.raises(ValueError, match="need 4 counts"):
            run_reduce_scatter_v(eng, [8, 8, 8])

    def test_negative_counts(self):
        eng = Engine(2, functional=True)
        with pytest.raises(ValueError, match="non-negative"):
            run_reduce_scatter_v(eng, [8, -8])

    def test_unaligned_counts(self):
        eng = Engine(2, functional=True)
        with pytest.raises(ValueError, match="multiples"):
            run_reduce_scatter_v(eng, [7, 9])

    def test_all_zero_rejected(self):
        eng = Engine(2, functional=True)
        with pytest.raises(ValueError, match="positive"):
            run_reduce_scatter_v(eng, [0, 0])

    def test_counts_to_partition(self):
        assert counts_to_partition([8, 0, 16]) == [(0, 8), (8, 0), (8, 16)]


class TestReduceScatterV:
    @pytest.mark.parametrize("counts", [
        [64, 64, 64, 64],
        [8, 128, 32, 88],
        [0, 128, 0, 128],
        [256, 0, 0, 0],
    ])
    def test_correctness(self, counts):
        eng = Engine(4, functional=True)
        run_reduce_scatter_v(eng, counts, imax=64)

    @pytest.mark.parametrize("op", ["sum", "max", "prod"])
    def test_operators(self, op):
        eng = Engine(3, functional=True)
        run_reduce_scatter_v(eng, [80, 160, 80], op=op, imax=64)

    def test_on_machine(self):
        eng = Engine(8, machine=TINY, functional=True)
        counts = [2 * KB] * 4 + [6 * KB] * 4
        res = run_reduce_scatter_v(eng, counts, imax=KB)
        assert res.time > 0

    def test_copy_floor_holds_for_ragged_counts(self):
        """Theorem 3.1 never used uniformity: copy volume == s."""
        eng = Engine(4, machine=TINY, functional=False, trace=True)
        counts = [1 * KB, 5 * KB, 2 * KB, 8 * KB]
        run_reduce_scatter_v(eng, counts, imax=KB)
        assert eng.trace.copy_bytes() == sum(counts)

    @given(
        p=st.integers(2, 6),
        weights=st.lists(st.integers(0, 40), min_size=6, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_random_counts(self, p, weights):
        counts = [8 * w for w in weights[:p]]
        if sum(counts) == 0:
            counts[0] = 8
        eng = Engine(p, functional=True)
        run_reduce_scatter_v(eng, counts, imax=128)


class TestAllgatherV:
    @pytest.mark.parametrize("counts", [
        [64, 64, 64],
        [8, 240, 32],
        [0, 128, 64],
        [96, 0, 0],
    ])
    def test_correctness(self, counts):
        eng = Engine(3, functional=True)
        run_allgather_v(eng, counts, imax=64)

    def test_on_machine_with_adaptive(self):
        eng = Engine(8, machine=TINY, functional=True)
        counts = [KB * (r + 1) for r in range(8)]
        run_allgather_v(eng, counts, copy_policy="adaptive", imax=KB)

    @given(
        p=st.integers(2, 6),
        weights=st.lists(st.integers(0, 30), min_size=6, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_random_counts(self, p, weights):
        counts = [8 * w for w in weights[:p]]
        if sum(counts) == 0:
            counts[-1] = 16
        eng = Engine(p, functional=True)
        run_allgather_v(eng, counts, imax=128)

    def test_schedule_fuzzing(self):
        for seed in (5, 9):
            eng = Engine(4, functional=True, schedule_seed=seed)
            run_allgather_v(eng, [32, 96, 0, 64], imax=64)


class TestUniformEquivalence:
    def test_rsv_with_uniform_counts_matches_rs(self):
        """Uniform counts reproduce the paper's reduce-scatter DAV."""
        from repro.models.dav import implementation_dav

        p, block = 8, 4 * KB
        eng = Engine(p, machine=TINY, functional=False)
        res = run_reduce_scatter_v(eng, [block] * p, imax=KB)
        assert res.dav == implementation_dav(
            "reduce_scatter", "ma", block * p, p
        )
