"""RG pipelined tree reduction tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import run_reduce_collective
from repro.collectives.rg import (
    RG_ALLREDUCE,
    RG_REDUCE,
    RGAllreduce,
    RGReduce,
    build_tree,
)
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestBuildTree:
    def test_single_rank_no_levels(self):
        assert build_tree(1, 2) == []

    def test_exact_ternary(self):
        levels = build_tree(9, 2)
        assert len(levels) == 2
        assert len(levels[0]) == 3
        assert levels[1][0].parent == 0
        assert levels[1][0].children == (3, 6)

    def test_singleton_tail_group(self):
        levels = build_tree(4, 2)  # 3+1 at level 0
        assert levels[0][1].children == ()

    def test_every_rank_appears_once_per_level_role(self):
        for p, k in ((7, 2), (16, 3), (64, 2)):
            levels = build_tree(p, k)
            consumed = set()
            for lvl in levels:
                for g in lvl:
                    for c in g.children:
                        assert c not in consumed
                        consumed.add(c)
            # everyone but the root is eventually consumed
            assert len(consumed) == p - 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_tree(0, 2)
        with pytest.raises(ValueError):
            build_tree(4, 0)


class TestFunctional:
    @pytest.mark.parametrize("alg", [RG_REDUCE, RG_ALLREDUCE])
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 9, 13])
    def test_correctness(self, alg, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(alg, eng, 960)

    @pytest.mark.parametrize("branch", [1, 2, 3, 4])
    def test_branching_degrees(self, branch):
        eng = Engine(8, functional=True)
        run_reduce_collective(RGAllreduce(branch=branch, slice_size=256),
                              eng, 4 * KB)

    def test_pipelined_multi_slice(self):
        eng = Engine(5, functional=True)
        run_reduce_collective(RGAllreduce(branch=2, slice_size=128), eng,
                              4 * KB)

    def test_nonzero_root(self):
        eng = Engine(6, functional=True)
        run_reduce_collective(RGReduce(branch=2, slice_size=256), eng,
                              3 * KB, root=4)

    @given(p=st.integers(2, 9), branch=st.integers(1, 3),
           s_units=st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_property(self, p, branch, s_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(RGAllreduce(branch=branch, slice_size=512),
                              eng, 8 * s_units)


class TestDAV:
    @pytest.mark.parametrize("p,k", [(8, 2), (6, 2), (7, 2), (8, 3)])
    def test_allreduce_formula(self, p, k):
        # p=7, k=2 exercises the level-0 singleton group (extra 2s copy)
        s = 32 * KB
        eng = Engine(p, machine=TINY, functional=False)
        res = run_reduce_collective(RGAllreduce(branch=k, slice_size=4 * KB),
                                    eng, s)
        assert res.dav == implementation_dav("allreduce", "rg", s, p, k=k)

    def test_reduce_has_no_copyout_term(self):
        s = 32 * KB
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(RGReduce(branch=2, slice_size=4 * KB),
                                    eng, s)
        assert res.dav == implementation_dav("reduce", "rg", s, 8, k=2)


class TestPipelining:
    def test_double_buffer_bounded_shm(self):
        from repro.collectives.common import make_env

        eng = Engine(8, functional=False, machine=TINY)
        env = make_env(RGAllreduce(branch=2, slice_size=4 * KB), engine=eng,
                       s=1 << 20)
        assert env.shm.nbytes == 2 * 8 * 4 * KB
