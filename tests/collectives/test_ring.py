"""Ring reduce-scatter / allreduce tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import run_reduce_collective
from repro.collectives.ring import RING_ALLREDUCE, RING_REDUCE_SCATTER
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestFunctional:
    @pytest.mark.parametrize("alg", [RING_REDUCE_SCATTER, RING_ALLREDUCE])
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_correctness(self, alg, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(alg, eng, 960)

    @pytest.mark.parametrize("op", ["sum", "max", "min", "prod"])
    def test_operators(self, op):
        eng = Engine(4, functional=True)
        run_reduce_collective(RING_ALLREDUCE, eng, 4 * KB, op=op)

    def test_ragged(self):
        eng = Engine(7, functional=True)
        run_reduce_collective(RING_REDUCE_SCATTER, eng, 1000)

    @given(p=st.integers(2, 7), s_units=st.integers(1, 300))
    @settings(max_examples=25, deadline=None)
    def test_property(self, p, s_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(RING_ALLREDUCE, eng, 8 * s_units)


class TestDAV:
    def test_reduce_scatter_formula(self):
        s = 32 * KB
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(RING_REDUCE_SCATTER, eng, s)
        assert res.dav == implementation_dav("reduce_scatter", "ring", s, 8)

    def test_allreduce_formula(self):
        s = 32 * KB
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(RING_ALLREDUCE, eng, s)
        assert res.dav == implementation_dav("allreduce", "ring", s, 8)


class TestStructure:
    def test_steps_scale_linearly(self):
        """Sync count grows ~linearly with p (the ring's weakness)."""
        counts = {}
        for p in (4, 8):
            eng = Engine(p, machine=TINY, functional=False)
            counts[p] = run_reduce_collective(
                RING_REDUCE_SCATTER, eng, 8 * KB
            ).sync_count
        assert counts[8] > 1.7 * counts[4]

    def test_ma_beats_ring_on_large_messages(self):
        """The movement-avoiding design's whole point (Table 1)."""
        from repro.collectives.ma import MA_REDUCE_SCATTER

        s = 2 << 20
        eng1 = Engine(8, machine=TINY, functional=False)
        t_ring = run_reduce_collective(RING_REDUCE_SCATTER, eng1, s).time
        eng2 = Engine(8, machine=TINY, functional=False)
        t_ma = run_reduce_collective(MA_REDUCE_SCATTER, eng2, s,
                                     imax=64 * KB).time
        assert t_ma < t_ring
