"""Vendor baseline model tests: functional correctness everywhere plus
the mechanism-level properties the paper attributes to each."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.baselines import (
    CMABcast,
    CMARingAllreduce,
    MPICHAllreduce,
    XPMEMAllreduce,
    XPMEMReduceScatter,
    make_vendor_suites,
)
from repro.collectives.common import (
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024
RUNNERS = {
    "reduce_scatter": run_reduce_collective,
    "reduce": run_reduce_collective,
    "allreduce": run_reduce_collective,
    "bcast": run_bcast_collective,
    "allgather": run_allgather_collective,
}


class TestVendorSuitesFunctional:
    @pytest.mark.parametrize("vendor", sorted(make_vendor_suites()))
    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_all_collectives_correct(self, vendor, p):
        suite = make_vendor_suites()[vendor]
        for kind, (alg, policy) in suite.items():
            eng = Engine(p, functional=True)
            RUNNERS[kind](alg, eng, 8 * 250, copy_policy=policy, imax=512)

    @pytest.mark.parametrize("vendor", sorted(make_vendor_suites()))
    def test_with_machine(self, vendor):
        suite = make_vendor_suites()[vendor]
        for kind, (alg, policy) in suite.items():
            eng = Engine(8, machine=TINY, functional=True)
            RUNNERS[kind](alg, eng, 8 * KB, copy_policy=policy, imax=KB)

    def test_suites_cover_all_five_collectives(self):
        for vendor, suite in make_vendor_suites().items():
            assert set(suite) == {
                "reduce_scatter", "reduce", "allreduce", "bcast", "allgather"
            }, vendor


class TestXPMEMProperties:
    def test_lowest_dav_of_all_reductions(self):
        """Direct access: no staging copies at all for reduce-scatter."""
        s = 32 * KB
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(XPMEMReduceScatter(), eng, s)
        # 3I per reduce, p-1 reduces per partition: 3s(p-1) + nothing
        assert res.dav == 3 * s * 7

    def test_cross_socket_loads_hit_numa(self):
        eng = Engine(8, machine=TINY, functional=False)
        s = 256 * KB  # per-rank buffers exceed TINY's cache
        res = run_reduce_collective(XPMEMReduceScatter(), eng, s)
        assert res.traffic.numa_bytes + res.traffic.c2c_bytes > 0

    def test_allreduce_memmove_crossover(self):
        """NT engages only once s/p crosses the memmove threshold: the
        Figure 15 crossover mechanism."""
        p = 8
        thr = TINY.memmove_nt_threshold  # 256 KB
        small = Engine(p, machine=TINY, functional=False, trace=True)
        run_reduce_collective(XPMEMAllreduce(), small, p * thr // 2)
        assert small.trace.copy_bytes(nt=True) == 0
        big = Engine(p, machine=TINY, functional=False, trace=True)
        run_reduce_collective(XPMEMAllreduce(), big, p * thr)
        assert big.trace.copy_bytes(nt=True) > 0

    @given(p=st.integers(2, 6), s_units=st.integers(1, 200))
    @settings(max_examples=15, deadline=None)
    def test_property_correct(self, p, s_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(XPMEMAllreduce(), eng, 8 * s_units)


class TestCMAProperties:
    def test_kernel_copies_never_nt(self):
        eng = Engine(8, machine=TINY, functional=False, trace=True)
        run_reduce_collective(CMARingAllreduce(), eng, 4 << 20)
        assert eng.trace.copy_bytes(nt=True) == 0

    def test_one_to_all_contention(self):
        """CMA bcast contends on the root's page locks (Table 5) — the
        page-walk serialization grows with the message size."""
        s = 4 << 20
        eng1 = Engine(8, machine=TINY, functional=False)
        t_cma = run_bcast_collective(CMABcast(), eng1, s).time
        from repro.collectives.bcast import PIPELINED_BCAST

        eng2 = Engine(8, machine=TINY, functional=False)
        t_shm = run_bcast_collective(PIPELINED_BCAST, eng2, s,
                                     copy_policy="adaptive",
                                     imax=64 * KB).time
        assert t_cma > 1.3 * t_shm

    def test_intel_faster_than_openmpi(self):
        """Intel MPI = same mechanism, tighter kernel tuning."""
        s = 1 << 20
        eng1 = Engine(8, machine=TINY, functional=False)
        t_ompi = run_reduce_collective(
            CMARingAllreduce("o", kernel_factor=1.0), eng1, s).time
        eng2 = Engine(8, machine=TINY, functional=False)
        t_impi = run_reduce_collective(
            CMARingAllreduce("i", kernel_factor=0.5), eng2, s).time
        assert t_impi < t_ompi


class TestMPICHProperties:
    def test_cell_overhead_slows_it_down(self):
        from repro.collectives.rabenseifner import RABENSEIFNER_ALLREDUCE

        s = 1 << 20
        eng1 = Engine(8, machine=TINY, functional=False)
        t_plain = run_reduce_collective(RABENSEIFNER_ALLREDUCE, eng1, s).time
        eng2 = Engine(8, machine=TINY, functional=False)
        t_mpich = run_reduce_collective(MPICHAllreduce(), eng2, s).time
        assert t_mpich > t_plain
