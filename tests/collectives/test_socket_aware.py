"""Socket-aware two-level MA tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.common import make_env, run_reduce_collective
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
    socket_groups,
)
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024
ALGS = {
    "reduce_scatter": SOCKET_MA_REDUCE_SCATTER,
    "allreduce": SOCKET_MA_ALLREDUCE,
    "reduce": SOCKET_MA_REDUCE,
}


class TestSocketGroups:
    def test_machine_mapping(self):
        eng = Engine(8, machine=TINY, functional=False)
        env = make_env(SOCKET_MA_ALLREDUCE, engine=eng, s=1024)
        groups = socket_groups(env)
        assert groups == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_functional_fallback_split(self):
        eng = Engine(6, functional=True)
        env = make_env(SOCKET_MA_ALLREDUCE, engine=eng, s=1024,
                       params={"sockets": 3})
        groups = socket_groups(env)
        assert groups == [[0, 1], [2, 3], [4, 5]]

    def test_degenerate_single_group(self):
        eng = Engine(3, functional=True)
        env = make_env(SOCKET_MA_ALLREDUCE, engine=eng, s=1024,
                       params={"sockets": 1})
        assert socket_groups(env) == [[0, 1, 2]]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("kind", list(ALGS))
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
    def test_small(self, kind, p):
        eng = Engine(p, functional=True)
        run_reduce_collective(ALGS[kind], eng, 960, imax=128)

    @pytest.mark.parametrize("kind", list(ALGS))
    def test_with_machine(self, kind):
        eng = Engine(8, machine=TINY, functional=True)
        run_reduce_collective(ALGS[kind], eng, 32 * KB, imax=KB)

    def test_uneven_groups(self):
        # 7 ranks over 2 sockets: groups of 4 and 3
        eng = Engine(7, machine=TINY, functional=True)
        run_reduce_collective(SOCKET_MA_ALLREDUCE, eng, 7 * KB, imax=512)

    def test_three_socket_functional(self):
        eng = Engine(9, functional=True)
        run_reduce_collective(SOCKET_MA_REDUCE, eng, 9 * KB, root=4,
                              imax=512, params={"sockets": 3})

    @given(p=st.integers(2, 8), s_units=st.integers(2, 400))
    @settings(max_examples=25, deadline=None)
    def test_property_random_shapes(self, p, s_units):
        eng = Engine(p, functional=True)
        run_reduce_collective(SOCKET_MA_ALLREDUCE, eng, 8 * s_units,
                              imax=256)


class TestDAV:
    @pytest.mark.parametrize("kind", list(ALGS))
    @pytest.mark.parametrize("s", [16 * KB, 100 * KB])
    def test_exact_formula(self, kind, s):
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(ALGS[kind], eng, s, imax=KB)
        assert res.dav == implementation_dav(kind, "socket-ma", s, 8, m=2)


class TestSyncAdvantage:
    def test_fewer_chain_waits_than_plain_ma(self):
        """Socket-aware level-1 chains span p/m ranks, not p."""
        from repro.collectives.ma import MA_REDUCE_SCATTER

        s = 64 * KB
        eng1 = Engine(8, machine=TINY, functional=False)
        plain = run_reduce_collective(MA_REDUCE_SCATTER, eng1, s, imax=8 * KB)
        eng2 = Engine(8, machine=TINY, functional=False)
        sock = run_reduce_collective(SOCKET_MA_REDUCE_SCATTER, eng2, s,
                                     imax=8 * KB)
        assert sock.sync_count < plain.sync_count

    def test_level1_stays_intra_socket(self):
        """No NUMA traffic during level 1: the only cross-socket bytes
        come from the level-2 combine."""
        eng = Engine(8, machine=TINY, functional=False)
        s = 32 * KB
        res = run_reduce_collective(SOCKET_MA_REDUCE_SCATTER, eng, s,
                                    imax=KB)
        numa = res.traffic.numa_bytes + res.traffic.c2c_bytes
        # level 2 reads one remote segment per rank's partition: <= ~2s
        assert numa <= 2.5 * s
