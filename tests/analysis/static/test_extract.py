"""Trace -> IR extraction: structure, sync edges, pending nodes."""

import pytest

from repro.analysis.runner import cases
from repro.analysis.static.extract import (
    extract_case,
    extract_collective,
    extract_from_certificate,
    extract_program,
)
from repro.sim.replay import ScheduleCertificate
from tests.analysis.mc.test_verify import (
    partial_post_deadlock,
    racy_ma_reduce,
)


def _pingpong(eng):
    p = eng.nranks
    shm = eng.alloc_shared(64 * p)
    src = [eng.alloc(r, 64, random=True) for r in range(p)]

    def prog(ctx):
        r = ctx.rank
        ctx.copy(shm.view(r * 64, 64), src[r].view())
        ctx.post(("done", r))
        yield ctx.wait(("done", (r + 1) % p), 1)
        yield ctx.barrier(tuple(range(p)))

    eng.run(prog)


class TestExtractProgram:
    def test_node_census(self):
        ir = extract_program(_pingpong, nranks=2, label="pingpong")
        sig = ir.signature()
        assert sig["node_kinds"]["copy"] == 2
        assert sig["node_kinds"]["post"] == 2
        assert sig["node_kinds"]["wait"] == 2
        # one join node for the whole group, not one per member
        assert sig["node_kinds"]["barrier"] == 1
        assert sig["pending"] == 0

    def test_sync_edges_connect_matched_posts(self):
        ir = extract_program(_pingpong, nranks=2, label="pingpong")
        sync = [(e.src, e.dst) for e in ir.edges if e.kind == "sync"]
        assert len(sync) == 2
        for src, dst in sync:
            assert ir.nodes[src].kind == "post"
            assert ir.nodes[dst].kind == "wait"
            # the cross-rank release: rank r waits on rank (r+1) % 2
            assert ir.nodes[src].rank != ir.nodes[dst].rank

    def test_barrier_join_orders_all_members(self):
        ir = extract_program(_pingpong, nranks=2, label="pingpong")
        (join,) = [n for n in ir.nodes if n.kind == "barrier"]
        assert join.rank == -1
        assert join.group == (0, 1)
        for n in ir.nodes:
            if n.kind != "barrier":
                assert ir.happens_before(n.node, join.node)

    def test_footprints_resolve_to_buffers(self):
        ir = extract_program(_pingpong, nranks=2, label="pingpong")
        copies = ir.by_kind("copy")
        assert all(c.reads and c.writes for c in copies)
        shm = [b for b in ir.buffers if b.shared]
        assert len(shm) == 1
        assert {fp.buf for c in copies for fp in c.writes} == {shm[0].buf}

    def test_meta_carries_counters_and_sim_time(self):
        ir = extract_program(_pingpong, nranks=2, label="pingpong")
        assert ir.meta["counters"]["schema"] == "repro-obs/1"
        assert ir.meta["deadlocked"] is False
        assert ir.meta["error"] == ""

    def test_deadlock_yields_pending_wait(self):
        ir = extract_program(partial_post_deadlock, nranks=2,
                             label="partial-post")
        assert ir.meta["deadlocked"] is True
        pending = [n for n in ir.nodes if n.pending]
        assert len(pending) == 1
        assert pending[0].kind == "wait"
        assert pending[0].count == 2

    def test_shared_buffers_marked_uninitialized(self):
        ir = extract_program(racy_ma_reduce, nranks=3, label="racy")
        shm = [b for b in ir.buffers if b.shared]
        assert shm and not shm[0].initialized
        fills = [b for b in ir.buffers if b.name == "recv"]
        assert fills and fills[0].initialized


class TestExtractCase:
    def test_registered_case_dav_matches_counters(self):
        case = cases("ma")[0]
        ir = extract_case(case, nranks=4, s=1024)
        obs = ir.meta["counters"]["totals"]["trace_dav"]
        assert ir.static_dav() == obs

    def test_machine_defaults_to_nodea(self):
        ir = extract_case(cases("ma")[0])
        assert ir.meta["machine"]["name"] == "NodeA"
        assert ir.meta["machine"]["sockets"] == 2

    def test_extract_collective_covers_matrix(self):
        irs = extract_collective("socket_aware", nranks=4, s=512)
        assert {ir.meta["kind"] for ir in irs} == {
            "reduce_scatter", "allreduce", "reduce"}
        assert all(ir.meta["locality"] == "socket" for ir in irs)


class TestExtractCertificate:
    def test_adhoc_certificate_rejected(self):
        cert = ScheduleCertificate(
            case="adhoc", collective="", kind="", nranks=2, s=64,
            choices=[0, 1], failure="deadlock", detail="")
        with pytest.raises(ValueError, match="extract_program"):
            extract_from_certificate(cert)

    def test_unknown_case_rejected(self):
        cert = ScheduleCertificate(
            case="nope/reduce", collective="nope", kind="reduce",
            nranks=2, s=64, failure="deadlock")
        with pytest.raises(ValueError, match="unknown collective"):
            extract_from_certificate(cert)

    def test_registered_certificate_replays_once(self):
        cert = ScheduleCertificate(
            case="ma/reduce_scatter", collective="ma",
            kind="reduce_scatter", nranks=2, s=256,
            choices=[0, 0, 1], failure="race", detail="witness")
        ir = extract_from_certificate(cert)
        assert ir.meta["certificate"]["failure"] == "race"
        assert ir.meta["certificate"]["choices"] == [0, 0, 1]
        assert ir.meta["machine"] is None  # functional replay
        assert ir.static_dav() > 0
