"""Schedule-IR structure: order queries, accounting, serialization."""

import json

import pytest

from repro.analysis.static.ir import (
    IR_SCHEMA,
    SUPPORTED_IR_SCHEMAS,
    BufferInfo,
    Edge,
    Footprint,
    IRSchemaError,
    IRValidationError,
    OpNode,
    ScheduleIR,
    ir_from_json,
    ir_to_json,
)


def _diamond() -> ScheduleIR:
    """r0: copy -> post; r1: wait -> reduce (sync edge post->wait)."""
    buf = BufferInfo(buf=0, name="shm", nbytes=256, shared=True)
    nodes = [
        OpNode(node=0, rank=0, kind="copy", nbytes=128,
               writes=(Footprint(0, 0, 128),)),
        OpNode(node=1, rank=0, kind="post", tag=("in", 0)),
        OpNode(node=2, rank=1, kind="wait", tag=("in", 0), count=1),
        OpNode(node=3, rank=1, kind="reduce_acc", nbytes=128,
               reads=(Footprint(0, 0, 128),),
               writes=(Footprint(0, 128, 128),)),
    ]
    edges = [Edge(0, 1), Edge(2, 3), Edge(1, 2, "sync")]
    ir = ScheduleIR(meta={"label": "diamond", "nranks": 2},
                    buffers=[buf], nodes=nodes, edges=edges)
    ir.validate()
    return ir


class TestOrder:
    def test_happens_before_transitive(self):
        ir = _diamond()
        assert ir.happens_before(0, 3)
        assert ir.happens_before(1, 2)
        assert not ir.happens_before(3, 0)

    def test_ordered_is_symmetric_reachability(self):
        ir = _diamond()
        assert ir.ordered(0, 3) and ir.ordered(3, 0)

    def test_toposort_respects_edges(self):
        ir = _diamond()
        order = ir.toposort()
        pos = {n: i for i, n in enumerate(order)}
        for e in ir.edges:
            assert pos[e.src] < pos[e.dst]

    def test_find_cycle_none_on_dag(self):
        assert _diamond().find_cycle() is None

    def test_find_cycle_reports_members(self):
        ir = _diamond()
        ir.add_edge(3, 0)  # close the loop
        cycle = ir.find_cycle()
        assert cycle is not None
        assert set(cycle) <= {0, 1, 2, 3}
        with pytest.raises(IRValidationError, match="cycle"):
            ir.toposort()

    def test_caches_invalidate_on_mutation(self):
        ir = _diamond()
        assert not ir.happens_before(3, 0)
        ir.add_edge(3, 0)
        assert ir.find_cycle() is not None


class TestAccounting:
    def test_static_dav_theorem_31(self):
        ir = _diamond()
        # one copy (2n) + one reduce (3n), n = 128
        assert ir.static_dav() == 2 * 128 + 3 * 128

    def test_signature_census(self):
        sig = _diamond().signature()
        assert sig["nodes"] == 4
        assert sig["node_kinds"] == {"copy": 1, "post": 1,
                                     "reduce_acc": 1, "wait": 1}
        assert sig["edge_kinds"] == {"po": 2, "sync": 1}
        assert sig["data_ops_per_rank"] == {"0": 1, "1": 1}
        assert sig["static_dav"] == 640.0

    def test_content_key_stable_and_shape_sensitive(self):
        a, b = _diamond(), _diamond()
        assert a.key() == b.key()
        b.add_edge(0, 3)
        assert a.key() != b.key()


class TestValidation:
    def test_non_dense_ids_rejected(self):
        ir = ScheduleIR(nodes=[OpNode(node=1, rank=0, kind="copy")])
        with pytest.raises(IRValidationError, match="dense"):
            ir.validate()

    def test_dangling_edge_rejected(self):
        ir = _diamond()
        ir.add_edge(0, 99)
        with pytest.raises(IRValidationError, match="unknown nodes"):
            ir.validate()

    def test_unknown_buffer_rejected(self):
        ir = ScheduleIR(nodes=[OpNode(node=0, rank=0, kind="copy",
                                      reads=(Footprint(5, 0, 8),))])
        with pytest.raises(IRValidationError, match="buffer"):
            ir.validate()


class TestSerialization:
    def test_round_trip_lossless(self):
        ir = _diamond()
        clone = ir_from_json(ir_to_json(ir))
        assert clone.meta == ir.meta
        assert clone.nodes == ir.nodes
        assert clone.edges == ir.edges
        assert clone.buffers == ir.buffers
        assert clone.key() == ir.key()

    def test_tuple_tags_survive(self):
        ir = _diamond()
        clone = ir_from_json(ir_to_json(ir))
        assert clone.nodes[1].tag == ("in", 0)
        assert isinstance(clone.nodes[1].tag, tuple)

    def test_unknown_schema_rejected_naming_supported(self):
        payload = json.loads(ir_to_json(_diamond()))
        payload["schema"] = "repro-ir/99"
        with pytest.raises(ValueError, match=r"schema.*repro-ir/1"):
            ir_from_json(json.dumps(payload))

    def test_missing_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            ir_from_json("{}")

    def test_unknown_node_field_rejected(self):
        payload = json.loads(ir_to_json(_diamond()))
        payload["nodes"][0]["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            ir_from_json(json.dumps(payload))

    def test_schema_tag_present(self):
        assert json.loads(ir_to_json(_diamond()))["schema"] == IR_SCHEMA


class TestSchemaGuard:
    """``lint --ir-out`` round-trip discipline: loading an exported IR
    goes through a schema-version guard (``IRSchemaError``, mirroring
    the compiled evaluator's ``ScheduleSchemaError``)."""

    def test_corrupted_file_raises_schema_error(self):
        with pytest.raises(IRSchemaError, match="not valid JSON"):
            ir_from_json("{truncated...")

    def test_non_object_payload_raises_schema_error(self):
        with pytest.raises(IRSchemaError, match="JSON object"):
            ir_from_json("[1, 2, 3]")

    def test_future_version_raises_naming_supported(self):
        payload = json.loads(ir_to_json(_diamond()))
        payload["schema"] = "repro-ir/99"
        with pytest.raises(IRSchemaError) as exc:
            ir_from_json(json.dumps(payload))
        for schema in SUPPORTED_IR_SCHEMAS:
            assert schema in str(exc.value)

    def test_schema_error_is_a_value_error(self):
        # pre-existing except ValueError handlers must keep catching it
        assert issubclass(IRSchemaError, ValueError)
