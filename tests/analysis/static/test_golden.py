"""Golden IR snapshots: every registered collective at p in {2, 4}.

The snapshot is :meth:`ScheduleIR.signature` — node/edge census,
per-rank data-op counts, sync structure and static DAV.  Deliberately
machine- and timing-free, so the test pins the *schedule shape*: any
reordered, missing, resized or duplicated operation fails it, while
timing-model recalibration does not.

To regenerate after an intentional schedule change::

    PYTHONPATH=src python tests/analysis/static/test_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.analysis.runner import cases
from repro.analysis.static.extract import extract_case

GOLDEN_PATH = Path(__file__).parent / "golden_ir.json"
RANK_COUNTS = (2, 4)


def _current():
    out = {}
    for p in RANK_COUNTS:
        for c in cases("all"):
            out[f"{c.label}@p{p}"] = extract_case(c, nranks=p).signature()
    return out


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("p", RANK_COUNTS)
def test_signatures_match_golden(golden, p):
    for c in cases("all"):
        key = f"{c.label}@p{p}"
        sig = extract_case(c, nranks=p).signature()
        assert key in golden, f"{key} missing from golden file — " \
            "regenerate (see module docstring)"
        assert sig == golden[key], (
            f"{key} schedule shape changed; if intentional, regenerate "
            "the golden file (see module docstring)"
        )


def test_golden_covers_exactly_the_matrix(golden):
    expected = {f"{c.label}@p{p}" for p in RANK_COUNTS
                for c in cases("all")}
    assert set(golden) == expected


def test_signatures_are_deterministic():
    c = cases("ma")[0]
    assert extract_case(c).signature() == extract_case(c).signature()


if __name__ == "__main__":  # regeneration helper
    GOLDEN_PATH.write_text(
        json.dumps(_current(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
