"""Symbolic-size schedule certification: the piecewise-affine domain,
structural unification, the four certificate checks, and the
collective × p matrix the CI ``certify-regions`` step gates on."""

import json
from fractions import Fraction
from pathlib import Path

import pytest

from repro.analysis.static.symbolic import (
    DEFAULT_VALIDATE,
    Affine,
    SymbolicError,
    SymbolicSchedule,
    capture_region_ir,
    certify_matrix,
    certify_region,
    check_guard_partition,
    unify,
)
from repro.bench.spec import yhccl_spec
from repro.machine.spec import NODE_A

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_symbolic.json").read_text())

KINDS = ("allgather", "allreduce", "bcast", "reduce", "reduce_scatter")


class TestAffine:
    def test_fit_inverts_exactly(self):
        f = Affine.fit(8192, 3 * 8192 + 64, 16384, 3 * 16384 + 64)
        assert f.a == 3 and f.b == 64
        assert f.at(8192) == 3 * 8192 + 64
        assert f.at(10 ** 9) == 3 * 10 ** 9 + 64

    def test_const(self):
        f = Affine.const(42)
        assert f.is_const and f.at(1) == f.at(10 ** 12) == 42

    def test_describe(self):
        assert Affine(Fraction(21), Fraction(0)).describe() == "21*s"
        assert Affine(Fraction(3, 4), Fraction(16)).describe() == \
            "3/4*s + 16"
        assert Affine.const(5).describe() == "5"

    def test_json_round_trip(self):
        f = Affine(Fraction(5, 8), Fraction(-3))
        assert Affine.from_json(f.to_json()) == f

    def test_non_integral_evaluation_rejected(self):
        f = Affine(Fraction(1, 3), Fraction(0))
        with pytest.raises(SymbolicError) as exc:
            f.at(8)
        assert exc.value.code == "SA-SYM-EXACT"

    def test_fit_needs_two_distinct_sizes(self):
        with pytest.raises(SymbolicError) as exc:
            Affine.fit(8, 1, 8, 2)
        assert exc.value.code == "SA-SYM-SHAPE"


@pytest.fixture(scope="module")
def small_allreduce_cert():
    """One certified region reused across the doc/instantiation tests
    (certification captures five engine runs — do it once)."""
    sym, report = certify_region(yhccl_spec("allreduce"), NODE_A, 2, 8192)
    assert report.ok, [f.message for f in report.errors]
    # the p=2 dpml2 cell is the regression case for DAV-row mapping:
    # its 15s count only matches the two-level "dpml2" model row — the
    # flat dpml row predicts 11s, and an unmapped bench label would
    # skip the identity check entirely
    assert sym.meta["dav_algorithm"] == "dpml2"
    codes = [f.code for f in report.findings]
    assert "SA-SYM-DAV-OK" in codes, codes
    assert "SA-SYM-DAV-SKIP" not in codes
    return sym


class TestGoldenSignatures:
    """Certify the p={2,4} region at base 8 KB for every collective
    family and pin the symbolic signature — DAV slope, DAG census,
    variable-footprint counts.  A drifting signature means either the
    algorithms changed shape or the symbolic lift broke."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("p", [2, 4])
    def test_signature_matches_golden(self, kind, p):
        sym, report = certify_region(yhccl_spec(kind), NODE_A, p, 8192)
        assert report.ok, [f.message for f in report.errors]
        assert sym.signature() == GOLDEN[f"{kind}/p{p}"]
        # at least DEFAULT_VALIDATE held-out sizes verified bitwise
        # (the exactness pass already asserted the match; pin the count)
        assert len(sym.validated) >= DEFAULT_VALIDATE


class TestHeldOutExactness:
    """Acceptance: symbolic DAV and byte footprints evaluated at sizes
    *not* used for unification match a fresh engine capture bitwise."""

    def test_fresh_capture_matches_symbolic(self, small_allreduce_cert):
        sym = small_allreduce_cert
        held_out = [s for s in sym.validated
                    if s not in sym.anchors][:DEFAULT_VALIDATE]
        assert len(held_out) >= 3
        for s in held_out:
            cap = capture_region_ir(yhccl_spec("allreduce"), NODE_A, 2, s)
            inst = sym.instantiate(s)
            assert [  # footprints, bitwise
                (n.kind, n.nbytes, n.reads, n.writes) for n in inst.nodes
            ] == [
                (n.kind, n.nbytes, n.reads, n.writes) for n in cap.nodes
            ]
            assert inst.static_dav() == cap.static_dav()
            assert sym.dav().at(s) == cap.static_dav()

    def test_instantiate_outside_residue_class_rejected(
            self, small_allreduce_cert):
        sym = small_allreduce_cert
        with pytest.raises(SymbolicError) as exc:
            sym.instantiate(sym.lo + 8)  # breaks s ≡ residue (mod M)
        assert exc.value.code == "SA-SYM-RANGE"


class TestUnify:
    def test_mis_unified_shapes_rejected(self):
        # 8 KB (one 8 KB reduction block) and 16 KB (two) are congruent
        # mod the region modulus but execute differently-shaped DAGs:
        # unification must fail with SA-SYM-SHAPE, never interpolate
        spec = yhccl_spec("allreduce")
        a = capture_region_ir(spec, NODE_A, 2, 8192)
        b = capture_region_ir(spec, NODE_A, 2, 16384)
        with pytest.raises(SymbolicError) as exc:
            unify([(8192, a), (16384, b)], modulus=256)
        assert exc.value.code == "SA-SYM-SHAPE"

    def test_non_congruent_sizes_rejected(self):
        spec = yhccl_spec("allreduce")
        a = capture_region_ir(spec, NODE_A, 2, 8192)
        b = capture_region_ir(spec, NODE_A, 2, 8200)
        with pytest.raises(SymbolicError) as exc:
            unify([(8192, a), (8200, b)], modulus=256)
        assert exc.value.code == "SA-SYM-RANGE"

    def test_needs_two_distinct_sizes(self):
        spec = yhccl_spec("allreduce")
        a = capture_region_ir(spec, NODE_A, 2, 8192)
        with pytest.raises(SymbolicError):
            unify([(8192, a)], modulus=256)


class TestGuardPartition:
    """Satellite: guard predicates are mutually exclusive and
    exhaustive over the default size sweeps (property test — no
    captures, pure guard evaluation)."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("p", [2, 4])
    def test_default_sweep_partitions(self, kind, p):
        from repro.bench.runners import resolve_imax
        from repro.bench.sizes import SIZES_ALLGATHER, SIZES_LARGE

        sizes = SIZES_ALLGATHER if kind == "allgather" else SIZES_LARGE
        findings = check_guard_partition(
            kind, p, NODE_A, imax=resolve_imax(None, NODE_A),
            policy="adaptive", sizes=sizes)
        errors = [f for f in findings if f.severity == "error"]
        assert errors == []
        assert any(f.code == "SA-SYM-GUARD-OK" for f in findings)

    def test_unknown_kind_is_a_finding_not_a_crash(self):
        findings = check_guard_partition(
            "alltoall", 4, NODE_A, imax=256 * 1024,
            policy="adaptive", sizes=[1024])
        assert any(f.code == "SA-SYM-GUARD" and f.severity == "error"
                   for f in findings)


class TestCertificateDoc:
    def test_round_trip_preserves_schedule(self, small_allreduce_cert):
        sym = small_allreduce_cert
        clone = SymbolicSchedule.from_doc(sym.to_doc())
        assert clone.signature() == sym.signature()
        assert clone.anchors == sym.anchors
        assert clone.modulus == sym.modulus
        s = sym.anchors[0]
        assert clone.instantiate(s).key() == sym.instantiate(s).key()
        assert clone.compiled_nbytes(s) == sym.compiled_nbytes(s)

    def test_unknown_schema_rejected_naming_supported(
            self, small_allreduce_cert):
        doc = small_allreduce_cert.to_doc()
        doc["schema"] = "repro-symcert/99"
        with pytest.raises(SymbolicError, match="repro-symcert/1") as exc:
            SymbolicSchedule.from_doc(doc)
        assert exc.value.code == "SA-SYM-SCHEMA"


class TestCertifyMatrix:
    def test_small_matrix_certifies(self):
        reports = certify_matrix(
            NODE_A, kinds=["bcast"], ps=(2,),
            sweep={"bcast": [8192, 16384]})
        assert reports and all(r.ok for r in reports)
        # one guard report + one certification per distinct region
        assert any("guards" in r.case for r in reports)

    def test_cap_reports_skipped_regions(self):
        # 16 MB sits above an 8 KB cap in its own region: it must be
        # *reported* as capped, and must not get a certification report
        reports = certify_matrix(
            NODE_A, kinds=["bcast"], ps=(2,), max_base=8192,
            sweep={"bcast": [8192, 16 * 1024 * 1024]})
        guard = next(r for r in reports if "guards" in r.case)
        capped = [f for f in guard.findings if f.code == "SA-SYM-CAPPED"]
        assert capped and 16 * 1024 * 1024 in capped[0].data["bases"]
        assert all("s=16777216" not in r.case for r in reports)
