"""The ``python -m repro lint`` CLI, ``analyze --json`` and
``YHCCL.lint()`` surfaces."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.static.ir import ir_from_json


class TestLintCLI:
    def test_single_collective_exit_zero(self, capsys):
        rc = main(["lint", "socket_aware"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "socket_aware/allreduce" in out
        assert "3/3 schedules lint clean" in out

    def test_all_matrix_clean(self, capsys):
        rc = main(["lint", "all"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "22/22 schedules lint clean" in out

    def test_naive_ma_warns_numa_but_exits_zero(self, capsys):
        rc = main(["lint", "ma"])
        out = capsys.readouterr().out
        assert rc == 0  # warnings never fail the lint
        assert "SA-LOC-NUMA" in out

    def test_json_output_schema(self, capsys):
        rc = main(["lint", "ma", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["schema"] == "repro-lint/1"
        assert doc["ok"] is True
        assert len(doc["cases"]) == 3
        case = doc["cases"][0]
        assert case["signature"]["static_dav"] > 0
        for f in case["findings"]:
            assert {"code", "severity", "message", "pass",
                    "case", "nodes"} <= set(f)

    def test_ir_out_round_trips(self, tmp_path, capsys):
        rc = main(["lint", "ma", "--ir-out", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        files = sorted(tmp_path.glob("*.ir.json"))
        assert len(files) == 3
        ir = ir_from_json(files[0].read_text())
        assert ir.meta["collective"] == "ma"
        assert ir.static_dav() > 0

    def test_machine_none_skips_machine_passes(self, capsys):
        rc = main(["lint", "ma", "--machine", "none", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        codes = {f["code"] for c in doc["cases"] for f in c["findings"]}
        assert "SA-LOC-NUMA" not in codes
        assert "SA-DAV-OK" in codes  # byte accounting needs no machine

    def test_unknown_collective_exit_two(self, capsys):
        rc = main(["lint", "nosuch"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown collective" in err


class TestCertifyRegionsCLI:
    def test_unknown_kind_exit_two(self, capsys):
        rc = main(["lint", "nosuch", "--certify-regions"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown collective kind" in err
        assert "allreduce" in err  # names the known kinds

    def test_machine_none_exit_two(self, capsys):
        rc = main(["lint", "all", "--certify-regions",
                   "--machine", "none"])
        assert rc == 2
        assert "machine preset" in capsys.readouterr().err

    def test_bad_p_list_exit_two(self, capsys):
        rc = main(["lint", "all", "--certify-regions",
                   "--certify-p", "two"])
        assert rc == 2

    def test_one_kind_json_certifies(self, capsys, monkeypatch):
        # pin a tiny sweep so the CLI test stays fast; the CI
        # certify-regions step runs the real default matrix
        import repro.analysis.static.symbolic as symbolic

        real = symbolic.certify_matrix

        def small(machine, **kw):
            kw["sweep"] = {"bcast": [8192, 16384]}
            kw["ps"] = (2,)
            return real(machine, **kw)

        monkeypatch.setattr(symbolic, "certify_matrix", small)
        rc = main(["lint", "bcast", "--certify-regions", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        codes = {f["code"] for c in doc["cases"] for f in c["findings"]}
        assert "SA-SYM-GUARD-OK" in codes
        assert "SA-SYM-EXACT-OK" in codes
        assert "SA-SYM-DAV-OK" in codes or "SA-SYM-DAV-SKIP" in codes
        assert "SA-SYM-BOUNDS-OK" in codes


class TestAnalyzeJson:
    def test_findings_on_stdout_progress_on_stderr(self, capsys):
        rc = main(["analyze", "ma", "-n", "4", "-s", "2048", "--json"])
        captured = capsys.readouterr()
        assert rc == 0
        doc = json.loads(captured.out)
        assert doc["schema"] == "repro-analyze/1"
        assert doc["ok"] is True
        assert {c["case"] for c in doc["cases"]} == {
            "ma/reduce_scatter", "ma/allreduce", "ma/reduce"}
        # human-readable progress went to stderr, not into the JSON
        assert "[OK]" in captured.err

    def test_dav_findings_share_shape_with_lint(self, capsys):
        rc = main(["analyze", "ma", "-n", "4", "-s", "2048", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        davs = [f for c in doc["cases"] for f in c["findings"]
                if f["code"] == "DAV-OK"]
        assert davs
        assert davs[0]["data"]["measured"] == davs[0]["data"]["predicted"]


class TestYhcclLint:
    @pytest.fixture()
    def lib(self):
        from repro.library.communicator import Communicator
        from repro.library.yhccl import YHCCL
        from repro.machine.spec import PRESETS

        return YHCCL(Communicator(4, machine=PRESETS["NodeA"]))

    def test_selected_schedule_lints_clean(self, lib):
        report = lib.lint("allreduce", 8192)
        assert report.ok, report.describe()
        assert {"extract", "deadlock", "dav", "buffers", "locality",
                "critical-path"} <= set(report.passes)

    def test_socket_aware_selection_keeps_contract(self, lib):
        # large messages select the socket-aware hierarchy; its
        # locality contract must hold statically
        report = lib.lint("reduce_scatter", 1 << 20)
        assert report.ok, report.describe()

    @pytest.mark.parametrize(
        "kind,nbytes",
        [("reduce_scatter", 1 << 20), ("allreduce", 8192),
         ("allreduce", 1 << 22), ("reduce", 1 << 20),
         ("bcast", 65536), ("allgather", 65536)],
    )
    def test_dav_checked_not_skipped(self, lib, kind, nbytes):
        # the registry identity lookup must recover the Table 1-3 row
        # for whatever the switching logic selects — a SKIP here means
        # the DAV contract silently stopped being enforced
        report = lib.lint(kind, nbytes)
        codes = [f.code for f in report.findings if f.pass_name == "dav"]
        assert codes == ["SA-DAV-OK"], report.describe()
