"""Static pass verdicts: seeded bugs, matrix invariants, DPOR agreement.

The acceptance bar for the analyzer: on every registered collective the
static DAV matches Theorem 3.1 byte-exactly and the deadlock pass
agrees with the DPOR checker, and all four PR-3 seeded-bug fixtures
are flagged *statically* — the only execution is the one extraction
trace per fixture.
"""

import pytest

from repro.analysis.mc import verify_case
from repro.analysis.runner import cases
from repro.analysis.static.extract import extract_case, extract_program
from repro.analysis.static.ir import Edge, OpNode, ScheduleIR
from repro.analysis.static.passes import (
    DEFAULT_PASSES,
    NUMA_CROSS_THRESHOLD,
    DeadlockPass,
    LocalityPass,
    run_passes,
)
from tests.analysis.mc.test_verify import (
    oversized_slice,
    partial_post_deadlock,
    racy_ma_reduce,
    uninit_read,
)

ALL_CASES = cases("all")


def _codes(report):
    return {f.code for f in report.findings}


@pytest.fixture(scope="module")
def matrix_reports():
    """One extraction + pass run per registered case (shared)."""
    out = []
    for case in ALL_CASES:
        ir = extract_case(case)
        out.append((case, ir, run_passes(ir)))
    return out


class TestSeededBugs:
    """All four PR-3 fixtures, flagged from one extraction trace each."""

    def test_racy_ma_reduce_flagged_by_overlap_lint(self):
        ir = extract_program(racy_ma_reduce, nranks=3, label="racy-ma")
        report = run_passes(ir)
        assert not report.ok
        codes = _codes(report)
        # rank 0 reads the shm slices while writers may still copy:
        # an unordered read-write (and the uninit reachability fires
        # too — nothing orders the producers before the consumer)
        assert "SA-BUF-RACE" in codes
        races = [f for f in report.findings if f.code == "SA-BUF-RACE"]
        assert any("rank 0 reads" in f.message for f in races)

    def test_partial_post_deadlock_flagged_by_deadlock_pass(self):
        ir = extract_program(partial_post_deadlock, nranks=2,
                             label="partial-post")
        report = run_passes(ir)
        assert not report.ok
        unsat = [f for f in report.findings if f.code == "SA-DL-UNSAT"]
        assert len(unsat) == 1
        assert "1 post(s) of 2 required" in unsat[0].message
        assert "never arrive" in unsat[0].message

    def test_oversized_slice_flagged_as_extraction_error(self):
        ir = extract_program(oversized_slice, nranks=1,
                             label="oversize")
        report = run_passes(ir)
        assert not report.ok
        errs = [f for f in report.findings
                if f.code == "SA-EXTRACT-ERROR"]
        assert len(errs) == 1
        assert "escapes" in errs[0].message

    def test_uninit_read_flagged_by_reachability(self):
        ir = extract_program(uninit_read, nranks=1, label="uninit")
        report = run_passes(ir)
        assert not report.ok
        uninit = [f for f in report.findings
                  if f.code == "SA-BUF-UNINIT"]
        assert len(uninit) == 1
        assert "no happens-before-ordered write" in uninit[0].message


class TestMatrixInvariants:
    """Whole registered matrix, one extraction per case."""

    def test_every_schedule_lints_clean(self, matrix_reports):
        for case, _, report in matrix_reports:
            assert report.ok, (case.label, report.describe())

    def test_static_dav_byte_exact_everywhere(self, matrix_reports):
        """Acceptance: SA-DAV-OK (byte-exact Theorem 3.1 match) on
        every case with a model row; never EXCESS/UNDER/OBS."""
        for case, _, report in matrix_reports:
            codes = _codes(report)
            assert not codes & {"SA-DAV-EXCESS", "SA-DAV-UNDER",
                                "SA-DAV-OBS"}, case.label
            if case.dav_algorithm or case.collective in (
                    "bcast", "allgather"):
                assert "SA-DAV-OK" in codes, case.label

    def test_static_dav_matches_obs_counters(self, matrix_reports):
        for case, ir, _ in matrix_reports:
            obs = ir.meta["counters"]["totals"]["trace_dav"]
            assert ir.static_dav() == obs, case.label

    def test_critical_path_is_a_lower_bound(self, matrix_reports):
        for case, ir, report in matrix_reports:
            assert "SA-CP-INCONSISTENT" not in _codes(report), case.label
            (bound,) = [f for f in report.findings
                        if f.code == "SA-CP-BOUND"]
            assert 0 < bound.data["bound"] <= ir.meta["sim_time"], \
                case.label

    def test_single_rank_schedule_lints_clean(self):
        """p=1 has no sync slack, so the first-order op-cost model can
        land a few percent above the engine's memory-level timing; the
        CP_REL_TOL model tolerance must absorb that instead of warning
        SA-CP-INCONSISTENT on a degenerate-but-correct schedule."""
        case = next(c for c in cases("ma") if c.kind == "reduce_scatter")
        report = run_passes(extract_case(case, nranks=1))
        assert report.ok, report.describe()
        assert "SA-CP-INCONSISTENT" not in _codes(report)

    def test_locality_flags_naive_and_passes_socket_aware(
            self, matrix_reports):
        flagged = {case.collective
                   for case, _, report in matrix_reports
                   if "SA-LOC-NUMA" in _codes(report)}
        assert "ma" in flagged
        assert "socket_aware" not in flagged
        assert "ring" not in flagged

    def test_deadlock_pass_clean_everywhere(self, matrix_reports):
        dl = DeadlockPass()
        for case, ir, _ in matrix_reports:
            assert dl.run(ir) == [], case.label


class TestDporAgreement:
    """Deadlock-pass verdicts agree with exhaustive DPOR verification
    on both clean and deadlocking schedules."""

    @pytest.mark.parametrize("name", ["ma", "socket_aware"])
    def test_clean_cases_agree(self, name):
        for case in cases(name):
            dynamic = verify_case(case, nranks=3, s=384,
                                  max_schedules=400)
            ir = extract_case(case, nranks=3, s=384)
            static_ok = not DeadlockPass().run(ir)
            assert static_ok == dynamic.ok, case.label

    def test_deadlocking_program_agrees(self):
        from repro.analysis.mc import verify_program

        dynamic = verify_program(partial_post_deadlock, nranks=2,
                                 label="partial-post")
        ir = extract_program(partial_post_deadlock, nranks=2,
                             label="partial-post")
        static = DeadlockPass().run(ir)
        assert not dynamic.ok
        assert dynamic.certificate.failure == "deadlock"
        assert any(f.code == "SA-DL-UNSAT" for f in static)


class TestLocalityEscalation:
    def test_socket_contract_escalates_to_error(self):
        """A schedule declaring locality='socket' that still crosses
        sockets fails the lint outright."""
        case = [c for c in ALL_CASES if c.collective == "ma"][0]
        ir = extract_case(case)
        ir.meta["locality"] = "socket"
        findings = LocalityPass().run(ir)
        numa = [f for f in findings if f.code == "SA-LOC-NUMA"]
        assert numa and numa[0].severity == "error"
        assert "locality='socket'" in numa[0].message

    def test_threshold_separates_the_families(self, matrix_reports):
        """The calibration invariant behind NUMA_CROSS_THRESHOLD: the
        naive flat baselines sit above it, socket-aware MA below."""
        fractions = {}
        lp = LocalityPass()
        for case, ir, _ in matrix_reports:
            machine = ir.meta["machine"]
            homes = lp._byte_homes(ir, machine, ir.nranks)
            fs = lp._numa(ir, machine, ir.nranks, homes)
            fractions[case.label] = (
                fs[0].data["fraction"] if fs else 0.0)
        assert fractions["ma/allreduce"] > NUMA_CROSS_THRESHOLD
        assert fractions["socket_aware/allreduce"] == 0.0 or \
            fractions["socket_aware/allreduce"] <= NUMA_CROSS_THRESHOLD


class TestCriticalPathSocketTopology:
    """The critical-path pass prices sync edges and barrier trees from
    the machine meta's *actual* socket topology (regression: pairs were
    all priced intra-socket and the inter latency never read)."""

    INTRA, INTER = 1e-6, 7e-6

    #: 2 sockets x 2 cores, 4 compact-bound ranks: 0/1 on socket 0,
    #: 2/3 on socket 1
    MACHINE = {
        "cache_bandwidth_core": 35e9,
        "op_overhead": 0.0,
        "sync_latency_intra": INTRA,
        "sync_latency_inter": INTER,
        "sockets": 2,
        "cores_per_socket": 2,
        "binding": "compact",
    }

    def _bound(self, ir):
        from repro.analysis.static.passes import CriticalPathPass

        (finding,) = CriticalPathPass().run(ir)
        return finding.data["bound"]

    def _pair_ir(self, waiter):
        ir = ScheduleIR(meta={"nranks": 4, "machine": self.MACHINE})
        ir.add_node(OpNode(node=0, rank=0, kind="post", tag="f"))
        ir.add_node(OpNode(node=1, rank=waiter, kind="wait", tag="f",
                           count=1))
        ir.add_edge(0, 1, "sync")
        return ir

    def test_cross_socket_pair_pays_inter_latency(self):
        assert self._bound(self._pair_ir(waiter=3)) == self.INTER
        assert self._bound(self._pair_ir(waiter=1)) == self.INTRA

    def test_cross_socket_barrier_pays_inter_tree(self):
        def barrier_ir(group):
            ir = ScheduleIR(meta={"nranks": 4, "machine": self.MACHINE})
            ir.add_node(OpNode(node=0, rank=-1, kind="barrier",
                               group=group))
            return ir

        # one round over two members: 2 * 1 * latency
        assert self._bound(barrier_ir((0, 3))) == 2 * self.INTER
        assert self._bound(barrier_ir((0, 1))) == 2 * self.INTRA


class TestCyclicIR:
    def test_cycle_reported_and_pipeline_survives(self):
        nodes = [
            OpNode(node=0, rank=0, kind="wait", tag="a", count=1),
            OpNode(node=1, rank=0, kind="post", tag="b"),
            OpNode(node=2, rank=1, kind="wait", tag="b", count=1),
            OpNode(node=3, rank=1, kind="post", tag="a"),
        ]
        edges = [Edge(0, 1), Edge(2, 3),
                 Edge(1, 2, "sync"), Edge(3, 0, "sync")]
        ir = ScheduleIR(meta={"label": "cross-wait", "nranks": 2},
                        nodes=nodes, edges=edges)
        report = run_passes(ir)
        assert not report.ok
        codes = _codes(report)
        assert "SA-DL-CYCLE" in codes
        # order-dependent passes skip instead of crashing
        assert "SA-IR-INVALID" in codes
        assert len(report.passes) == len(DEFAULT_PASSES)
