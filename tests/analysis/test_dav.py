"""DAV cross-check: traced volume vs Theorem 3.1 formulas."""

import pytest

from repro.analysis.dav import check_dav, predicted_dav, traced_dav
from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.models.dav import implementation_dav
from repro.sim.engine import Engine
from repro.sim.trace import OpRecord, Trace


def _traced_run(p=6, s=4800):
    eng = Engine(p, functional=True, trace=True)
    run_reduce_collective(MA_ALLREDUCE, eng, s, imax=512)
    return eng.trace, p, s


def test_traced_dav_is_2copy_plus_3reduce():
    trace = Trace()
    trace.add(OpRecord(rank=0, kind="copy", nbytes=100))
    trace.add(OpRecord(rank=1, kind="reduce_acc", nbytes=40))
    trace.add(OpRecord(rank=1, kind="reduce_out", nbytes=10))
    trace.add(OpRecord(rank=0, kind="touch", nbytes=999))  # not DAV
    assert traced_dav(trace) == 2 * 100 + 3 * 50


def test_ma_allreduce_matches_formula_exactly():
    trace, p, s = _traced_run()
    check = check_dav(trace, "allreduce", "ma", s, p)
    assert check.status == "ok"
    assert check.measured == implementation_dav("allreduce", "ma", s, p)


def test_excess_movement_fails():
    trace, p, s = _traced_run()
    trace.add(OpRecord(rank=0, kind="copy", nbytes=64))  # redundant copy
    check = check_dav(trace, "allreduce", "ma", s, p)
    assert check.status == "fail"
    assert not check.ok
    assert "more than Theorem 3.1" in check.describe()


def test_unknown_collective_is_skipped_not_passed():
    trace, p, s = _traced_run()
    check = check_dav(trace, "allreduce", "mystery", s, p)
    assert check.status == "skipped"
    assert check.ok  # skipped is not a failure
    assert "no DAV model" in check.describe()
    assert predicted_dav("allreduce", "mystery", s, p) is None


def test_extra_formulas_cover_non_table_collectives():
    assert predicted_dav("bcast", "", 1000, 8) == 16000
    assert predicted_dav("allgather", "", 1000, 4) == 2 * 4000 + 2 * 16000
    assert predicted_dav("reduce_scatter_v", "", 1000, 4) == 11000
    assert predicted_dav("allgather_v", "", 1000, 4) == 10000


@pytest.mark.parametrize("kind,alg", [
    ("reduce_scatter", "ma"), ("allreduce", "ring"), ("reduce", "dpml"),
])
def test_predicted_matches_models_table(kind, alg):
    assert predicted_dav(kind, alg, 4096, 8) == \
        implementation_dav(kind, alg, 4096, 8)
