"""Analysis runner matrix and the ``python -m repro analyze`` CLI."""

import pytest

from repro.analysis.runner import (
    analyze_collective,
    collectives,
    render_results,
)
from repro.__main__ import main
from repro.machine.spec import PRESETS


class TestMatrix:
    def test_registry_covers_issue_matrix(self):
        names = set(collectives())
        assert {"ma", "ring", "rabenseifner", "rg", "dpml", "socket_aware",
                "bcast", "allgather", "ordered", "vector"} <= names

    @pytest.mark.parametrize("name", ["ma", "ring", "bcast", "vector"])
    def test_collective_analyzes_clean(self, name):
        results = analyze_collective(name, nranks=4, s=2048)
        assert results
        for res in results:
            assert res.ok, f"{res.case.label}:\n{res.report.describe()}"

    def test_all_sweeps_whole_matrix(self):
        results = analyze_collective("all", nranks=4, s=2048)
        assert len(results) >= 20
        assert all(r.ok for r in results)

    def test_machine_preset_run(self):
        results = analyze_collective("socket_aware",
                                     machine=PRESETS["NodeB"],
                                     nranks=6, s=2048)
        assert all(r.ok for r in results)

    def test_schedule_seed_still_clean(self):
        results = analyze_collective("rg", nranks=5, s=2048,
                                     schedule_seed=1234)
        assert all(r.ok for r in results)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown collective"):
            analyze_collective("nosuch")

    def test_render_mentions_every_case(self):
        results = analyze_collective("ma", nranks=4, s=2048)
        text = render_results(results)
        for res in results:
            assert res.case.label in text
        assert "0 failing" in text


class TestCLI:
    def test_analyze_clean_exit_zero(self, capsys):
        rc = main(["analyze", "ma", "-n", "4", "-s", "2048"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[OK] ma/allreduce" in out
        assert "functional" in out

    def test_analyze_machine_preset(self, capsys):
        rc = main(["analyze", "bcast", "-n", "4", "-s", "2048",
                   "--machine", "NodeB"])
        assert rc == 0
        assert "NodeB" in capsys.readouterr().out

    def test_analyze_unknown_collective_exit_two(self, capsys):
        rc = main(["analyze", "nosuch"])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err
