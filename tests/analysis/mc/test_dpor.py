"""DPOR explorer: equivalence-class counts and exhaustiveness.

The strongest check here is cross-validation against brute force:
for small programs we enumerate *every* legal interleaving directly
and assert DPOR visits every distinct terminal state while exploring
no more schedules than the full interleaving count.
"""

import pytest

from repro.analysis.mc import Explorer, dependent
from repro.analysis.mc.verify import _Executor
from repro.sim.engine import Engine
from repro.sim.scheduler import ControlledScheduler, StepRecord


def _step(rank, *, reads=(), writes=(), posts=(), waits=(), enabled=(0, 1)):
    return StepRecord(index=0, rank=rank, enabled=enabled, reads=reads,
                      writes=writes, posts=posts, waits=waits)


class TestConflictRelation:
    def test_same_rank_always_dependent(self):
        assert dependent(_step(0), _step(0))

    def test_disjoint_steps_independent(self):
        a = _step(0, writes=((1, 0, 64),))
        b = _step(1, writes=((1, 64, 128),))
        assert not dependent(a, b)
        assert not dependent(_step(0), _step(1))

    def test_write_read_overlap_dependent(self):
        a = _step(0, writes=((1, 0, 64),))
        b = _step(1, reads=((1, 32, 96),))
        assert dependent(a, b)
        assert dependent(b, a)

    def test_different_buffers_independent(self):
        a = _step(0, writes=((1, 0, 64),))
        b = _step(1, writes=((2, 0, 64),))
        assert not dependent(a, b)

    def test_post_wait_same_tag_dependent(self):
        a = _step(0, posts=(("t",),))
        b = _step(1, waits=(("t",),))
        assert dependent(a, b)
        assert not dependent(a, _step(1, waits=(("u",),)))

    def test_wait_wait_independent(self):
        a = _step(0, waits=(("t",),))
        b = _step(1, waits=(("t",),))
        assert not dependent(a, b)


def _run_program(make_prog, nranks, choices):
    """One controlled execution; returns (scheduler, engine)."""
    sched = ControlledScheduler(choices=choices)
    eng = Engine(nranks, functional=True, trace=True, scheduler=sched)
    make_prog(eng)
    return sched, eng


def _brute_force_schedules(make_prog, nranks, length_hint=32):
    """Every legal schedule by DFS over the enabled sets."""
    results = []

    def extend(prefix):
        sched, eng = _run_program(make_prog, nranks, prefix)
        steps = sched.steps
        if len(steps) <= len(prefix):
            results.append([s.rank for s in steps])
            return
        # branch on every enabled alternative at the first free step
        for r in steps[len(prefix)].enabled:
            extend(prefix + [r])

    extend([])
    return results


class TestExplorerVsBruteForce:
    """DPOR must reach every distinct terminal state brute force does."""

    @pytest.mark.parametrize("conflicting", [True, False])
    def test_two_rank_copies(self, conflicting):
        def make_prog(eng):
            shm = eng.alloc_shared(128)
            srcs = [eng.alloc(r, 64, fill=float(r + 1)) for r in range(2)]

            def prog(ctx):
                off = 0 if conflicting else ctx.rank * 64
                ctx.copy(shm.view(off, 64), srcs[ctx.rank].view())
                yield ctx.barrier((0, 1))

            eng.run(prog)

        terminal_states = set()

        def execute(choices):
            sched, eng = _run_program(make_prog, 2, choices)
            state = tuple(
                b.data.tobytes() for b in eng.buffers if b.data is not None
            )
            terminal_states.add(state)
            return sched.steps

        explorer = Explorer(execute)
        schedules = list(explorer.run())
        assert explorer.complete

        brute_states = set()
        for full in _brute_force_schedules(make_prog, 2):
            _, eng = _run_program(make_prog, 2, full)
            brute_states.add(tuple(
                b.data.tobytes() for b in eng.buffers if b.data is not None
            ))
        assert terminal_states == brute_states
        if conflicting:
            # the write order is observable: two outcomes, both explored
            assert len(terminal_states) == 2
        else:
            # commuting writes: one Mazurkiewicz class suffices
            assert len(terminal_states) == 1

    def test_independent_ranks_explore_once(self):
        """Fully independent programs collapse to a single schedule."""

        def make_prog(eng):
            bufs = [eng.alloc(r, 64, fill=1.0) for r in range(3)]
            outs = [eng.alloc(r, 64, fill=0.0) for r in range(3)]

            def prog(ctx):
                ctx.copy(outs[ctx.rank].view(), bufs[ctx.rank].view())
                yield ctx.barrier((0, 1, 2))

            eng.run(prog)

        def execute(choices):
            sched, _ = _run_program(make_prog, 3, choices)
            return sched.steps

        explorer = Explorer(execute)
        n = sum(1 for _ in explorer.run())
        assert explorer.complete
        # barrier arrivals commute; nothing else interacts
        assert n == 1

    def test_budget_caps_exploration(self):
        def make_prog(eng):
            shm = eng.alloc_shared(64)
            srcs = [eng.alloc(r, 64, fill=float(r)) for r in range(3)]

            def prog(ctx):
                ctx.copy(shm.view(), srcs[ctx.rank].view())
                yield ctx.barrier((0, 1, 2))

            eng.run(prog)

        def execute(choices):
            sched, _ = _run_program(make_prog, 3, choices)
            return sched.steps

        explorer = Explorer(execute, max_schedules=2)
        n = sum(1 for _ in explorer.run())
        assert n == 2
        assert not explorer.complete


class TestExplorerOnExecutor:
    def test_deterministic_program_single_rank(self):
        def run_fn(eng):
            a = eng.alloc(0, 64, fill=1.0)
            b = eng.alloc(0, 64, fill=0.0)

            def prog(ctx):
                ctx.copy(b.view(), a.view())
                yield ctx.barrier((0,))

            eng.run(prog, ranks=[0])

        executor = _Executor(run_fn, nranks=1, seed=1, sanitize=False)
        explorer = Explorer(executor)
        n = sum(1 for _ in explorer.run())
        assert n == 1 and explorer.complete
