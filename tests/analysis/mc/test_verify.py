"""End-to-end verification: seeded-bug fixtures must each produce a
replayable failing schedule certificate; the registered collectives
must verify clean with full exploration at p=3."""

import pytest

from repro.analysis.mc import (
    replay_certificate,
    verify_case,
    verify_collective,
    verify_program,
)
from repro.analysis.runner import cases
from repro.sim.replay import certificate_from_json, certificate_to_json


# ---- seeded-bug fixtures ---------------------------------------------------


def racy_ma_reduce(eng):
    """An MA-style reduce with the consumer's waits removed: rank 0
    reduces the shm slices while the writers may still be copying."""
    p, s = eng.nranks, 192
    shm = eng.alloc_shared(p * s)
    sends = [eng.alloc(r, s, random=True, name=f"send[{r}]")
             for r in range(p)]
    recv = eng.alloc(0, s, fill=0.0, name="recv")

    def prog(ctx):
        r = ctx.rank
        ctx.copy(shm.view(r * s, s), sends[r].view())
        ctx.post(("in", r))
        if r == 0:
            # BUG: should wait(("in", src)) before reading each slice
            acc = recv.view()
            ctx.copy(acc, shm.view(0, s))
            for src in range(1, p):
                ctx.reduce_acc(acc, shm.view(src * s, s))
        yield ctx.barrier(tuple(range(p)))

    eng.run(prog)


def partial_post_deadlock(eng):
    """Rank 0 posts once; rank 1 waits for two posts."""

    def prog(ctx):
        if ctx.rank == 0:
            ctx.post(("chunk",))
        else:
            yield ctx.wait(("chunk",), 2)

    eng.run(prog)


def oversized_slice(eng):
    """A sub-slice that escapes its view (the satellite bounds check)."""
    buf = eng.alloc(0, 128, fill=1.0)
    out = eng.alloc(0, 128, fill=0.0)

    def prog(ctx):
        v = buf.view(64, 64)
        ctx.copy(out.view(0, 64), v.sub(32, 64))  # escapes by 32 bytes
        yield ctx.barrier((0,))

    eng.run(prog, ranks=[0])


def uninit_read(eng):
    """Reads a shared region nobody produced (sanitizer fixture)."""
    shm = eng.alloc_shared(64)
    out = eng.alloc(0, 64, fill=0.0)

    def prog(ctx):
        ctx.copy(out.view(), shm.view())
        yield ctx.barrier((0,))

    eng.run(prog, ranks=[0])


class TestSeededBugs:
    def test_racy_reduce_yields_race_certificate(self):
        res = verify_program(racy_ma_reduce, nranks=3, label="racy-ma")
        assert not res.ok
        cert = res.certificate
        assert cert.failure in ("race", "divergence")
        assert cert.case == "racy-ma"
        # the witness prefix is minimized: shorter than a full schedule
        sched_len = res.schedules  # at least one execution happened
        assert sched_len >= 1

    def test_racy_reduce_divergence_found(self):
        """Some interleaving must actually change the reduced output."""
        res = verify_program(racy_ma_reduce, nranks=3, label="racy-ma",
                             max_schedules=200)
        assert not res.ok

    def test_partial_post_deadlock_certificate(self):
        res = verify_program(partial_post_deadlock, nranks=2,
                             label="partial-post")
        assert not res.ok
        assert res.certificate.failure == "deadlock"
        # satellite (b): the diagnosis names the have/required counts
        assert "1 post(s) of 2 required" in res.certificate.detail
        assert "never arrive" in res.certificate.detail

    def test_oversized_slice_certificate(self):
        res = verify_program(oversized_slice, nranks=1, label="oversize")
        assert not res.ok
        assert res.certificate.failure == "error"
        assert "escapes view" in res.certificate.detail

    def test_uninit_read_needs_sanitizer(self):
        clean = verify_program(uninit_read, nranks=1, label="uninit")
        assert clean.ok  # zero-filled shm: functionally invisible
        res = verify_program(uninit_read, nranks=1, label="uninit",
                             sanitize=True)
        assert not res.ok
        assert res.certificate.failure == "sanitizer"
        assert "uninitialized" in res.certificate.detail


class TestCertificates:
    def test_round_trip_json(self):
        res = verify_program(partial_post_deadlock, nranks=2,
                             label="partial-post")
        cert = res.certificate
        restored = certificate_from_json(certificate_to_json(cert))
        assert restored == cert

    def test_bad_schema_rejected(self):
        text = certificate_to_json(
            verify_program(partial_post_deadlock, nranks=2,
                           label="x").certificate
        ).replace("repro-schedule/1", "repro-schedule/99")
        with pytest.raises(ValueError,
                           match=r"schema.*supported.*repro-schedule/1"):
            certificate_from_json(text)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            certificate_from_json("[]")

    def test_missing_schema_names_supported_versions(self):
        with pytest.raises(ValueError, match="repro-schedule/1"):
            certificate_from_json("{}")

    def test_registered_case_certificate_replays(self):
        """A certificate for a registered collective re-runs through
        replay_certificate and reproduces its failure kind."""
        # build a failing certificate by verifying a racy variant under
        # the registered ma/reduce label so replay can find the case
        ma = [c for c in cases("ma") if c.kind == "reduce"][0]
        res = verify_case(ma, nranks=3, s=192)
        assert res.ok  # the real ma/reduce is clean
        # replay of a clean case's empty-prefix "certificate" reports
        # non-reproduction rather than crashing
        from repro.sim.replay import ScheduleCertificate

        fake = ScheduleCertificate(case="ma/reduce", collective="ma",
                                   kind="reduce", nranks=3, s=192,
                                   choices=[], failure="race", detail="")
        outcome = replay_certificate(fake)
        assert not outcome.reproduced


class TestRegisteredCollectives:
    @pytest.mark.parametrize("name,kind,budget", [
        ("ma", "reduce", 200),
        ("rg", "allreduce", 100),
    ])
    def test_acceptance_cases_fully_explored(self, name, kind, budget):
        case = [c for c in cases(name) if c.kind == kind][0]
        res = verify_case(case, nranks=3, s=192, max_schedules=budget)
        assert res.ok, res.describe()
        assert res.complete, "exploration should exhaust within budget"
        assert res.schedules > 1, "conflicting steps must fork schedules"

    def test_verify_collective_all_kinds(self):
        results = verify_collective("dpml", nranks=3, s=192,
                                    max_schedules=50)
        assert results and all(r.ok for r in results)

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            verify_collective("nope")

    def test_sanitize_mode_clean_on_ma(self):
        ma = [c for c in cases("ma") if c.kind == "reduce"][0]
        res = verify_case(ma, nranks=3, s=192, sanitize=True,
                          max_schedules=200)
        assert res.ok, res.describe()
