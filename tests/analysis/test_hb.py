"""Vector-clock construction and race detection unit tests."""

from repro.analysis import analyze_trace
from repro.analysis.hb import find_races, race_check, stamp_accesses
from repro.sim.engine import Engine


def _two_rank_engine():
    eng = Engine(2, functional=True, trace=True)
    shm = eng.alloc_shared(128, name="win")
    priv = [eng.alloc(r, 128, fill=float(r), name=f"b[{r}]")
            for r in range(2)]
    return eng, shm, priv


class TestOrdering:
    def test_post_wait_orders_accesses(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(0, 64), priv[0].view(0, 64))
                ctx.post(("ready",))
            else:
                yield ctx.wait(("ready",), 1)
                ctx.copy(priv[1].view(0, 64), shm.view(0, 64))

        eng.run(prog)
        races, total = race_check(eng.trace, 2)
        assert total == 0 and not races

    def test_missing_wait_is_a_race(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(0, 64), priv[0].view(0, 64))
            else:
                ctx.copy(priv[1].view(0, 64), shm.view(0, 64))
            return
            yield

        eng.run(prog)
        races, total = race_check(eng.trace, 2)
        assert total == 1
        (race,) = races
        assert race.kind == "read-write"
        assert race.buf_name == "win"
        assert race.overlap == (0, 64)
        assert {race.first.rank, race.second.rank} == {0, 1}
        assert "win[0, 64)" in race.describe()

    def test_barrier_orders_accesses(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(0, 64), priv[0].view(0, 64))
            yield ctx.barrier()
            if ctx.rank == 1:
                ctx.copy(priv[1].view(0, 64), shm.view(0, 64))

        eng.run(prog)
        races, total = race_check(eng.trace, 2)
        assert total == 0 and not races

    def test_run_boundary_is_global_sync(self):
        eng, shm, priv = _two_rank_engine()

        def writer(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(0, 64), priv[0].view(0, 64))
            return
            yield

        def reader(ctx):
            if ctx.rank == 1:
                ctx.copy(priv[1].view(0, 64), shm.view(0, 64))
            return
            yield

        eng.run(writer)
        eng.run(reader)  # separate run: the boundary orders the accesses
        races, total = race_check(eng.trace, 2)
        assert total == 0


class TestConflictRules:
    def test_concurrent_reads_are_not_a_race(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            ctx.copy(priv[ctx.rank].view(0, 64), shm.view(0, 64))
            return
            yield

        eng.run(prog)
        races, total = race_check(eng.trace, 2)
        assert total == 0

    def test_disjoint_ranges_are_not_a_race(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            off = ctx.rank * 64
            ctx.copy(shm.view(off, 64), priv[ctx.rank].view(0, 64))
            return
            yield

        eng.run(prog)
        races, total = race_check(eng.trace, 2)
        assert total == 0

    def test_unordered_write_write_flagged(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            ctx.copy(shm.view(32, 64), priv[ctx.rank].view(0, 64))
            return
            yield

        eng.run(prog)
        races, total = race_check(eng.trace, 2)
        assert total == 1
        assert races[0].kind == "write-write"
        assert races[0].overlap == (32, 96)

    def test_partial_overlap_reported_exactly(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(0, 64), priv[0].view(0, 64))
            else:
                ctx.copy(shm.view(48, 64), priv[1].view(0, 64))
            return
            yield

        eng.run(prog)
        races, _ = race_check(eng.trace, 2)
        assert races[0].overlap == (48, 64)


class TestReporting:
    def test_max_reports_caps_reporting_not_counting(self):
        eng = Engine(2, functional=True, trace=True)
        shm = eng.alloc_shared(512, name="win")
        priv = [eng.alloc(r, 512, fill=0.0, name=f"b[{r}]")
                for r in range(2)]

        def prog(ctx):
            for i in range(8):
                ctx.copy(shm.view(i * 64, 64), priv[ctx.rank].view(0, 64))
            return
            yield

        eng.run(prog)
        races, total = race_check(eng.trace, 2, max_reports=3)
        assert len(races) == 3
        assert total > 3

    def test_analyze_trace_surfaces_races(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            ctx.copy(shm.view(0, 64), priv[ctx.rank].view(0, 64))
            return
            yield

        eng.run(prog)
        report = analyze_trace(eng.trace, 2)
        assert not report.ok
        assert report.total_races == 1
        assert "race" in report.describe()

    def test_stamp_accesses_snapshots_monotone_per_rank(self):
        eng, shm, priv = _two_rank_engine()

        def prog(ctx):
            ctx.copy(shm.view(ctx.rank * 64, 64), priv[ctx.rank].view(0, 64))
            yield ctx.barrier()
            ctx.copy(priv[ctx.rank].view(0, 64), shm.view(ctx.rank * 64, 64))

        eng.run(prog)
        stamped = stamp_accesses(eng.trace.events, 2)
        for rank in (0, 1):
            own = [sa.snapshot[rank] for sa in stamped
                   if sa.event.rank == rank]
            assert own == sorted(own)

    def test_find_races_empty_input(self):
        assert find_races([]) == ([], 0)

    def test_kind_totals_exact_under_truncation(self):
        """Per-kind tallies count every race, not just the reported."""
        eng = Engine(2, functional=True, trace=True)
        shm = eng.alloc_shared(512, name="win")
        priv = [eng.alloc(r, 512, fill=0.0, name=f"b[{r}]")
                for r in range(2)]

        def prog(ctx):
            for i in range(8):
                ctx.copy(shm.view(i * 64, 64), priv[ctx.rank].view(0, 64))
            return
            yield

        eng.run(prog)
        races, total = race_check(eng.trace, 2, max_reports=3)
        assert sum(races.kind_totals.values()) == total
        assert races.kind_totals["write-write"] == total

    def test_truncated_report_names_hidden_count(self):
        eng = Engine(2, functional=True, trace=True)
        shm = eng.alloc_shared(512, name="win")
        priv = [eng.alloc(r, 512, fill=0.0, name=f"b[{r}]")
                for r in range(2)]

        def prog(ctx):
            for i in range(8):
                ctx.copy(shm.view(i * 64, 64), priv[ctx.rank].view(0, 64))
            return
            yield

        eng.run(prog)
        report = analyze_trace(eng.trace, 2, max_reports=3)
        text = report.describe()
        hidden = report.total_races - 3
        assert f"{report.total_races} race(s)" in text
        assert "write-write" in text
        assert f"and {hidden} more race(s) not shown" in text
