"""Schedule lints: deadlock certificates, tag reuse, barrier mismatch,
slot-overwrite classification."""

import pytest

from repro.analysis import analyze_trace
from repro.analysis.schedule import lint_schedule
from repro.sim.engine import DeadlockError, Engine
from repro.sim.trace import SyncEvent, Trace


class TestDeadlockCertificates:
    def test_unsatisfiable_wait_produces_certificate(self):
        eng = Engine(3, functional=True, trace=True)

        def prog(ctx):
            if ctx.rank == 2:
                yield ctx.wait(("ghost", 7), 1)

        with pytest.raises(DeadlockError):
            eng.run(prog)
        report = analyze_trace(eng.trace, 3)
        assert not report.ok
        (cert,) = report.deadlocks
        assert cert.rank == 2
        assert cert.tag == ("ghost", 7)
        assert "ghost" in cert.message and "never arrive" in cert.message

    def test_underposted_wait_counts_missing_posts(self):
        eng = Engine(4, functional=True, trace=True)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.post(("flag",))
            elif ctx.rank == 3:
                yield ctx.wait(("flag",), 3)

        with pytest.raises(DeadlockError) as exc:
            eng.run(prog)
        (blocked,) = exc.value.blocked
        assert blocked.rank == 3
        assert blocked.have == 1 and blocked.count == 3
        assert blocked.posters == (0,)
        (cert,) = analyze_trace(eng.trace, 4).deadlocks
        assert "1 post(s)" in cert.message

    def test_partial_barrier_names_missing_ranks(self):
        eng = Engine(3, functional=True, trace=True)

        def prog(ctx):
            if ctx.rank != 1:
                yield ctx.barrier()

        with pytest.raises(DeadlockError) as exc:
            eng.run(prog)
        assert len(exc.value.blocked) == 2
        for b in exc.value.blocked:
            assert b.kind == "barrier"
            assert 1 not in b.arrived
        certs = analyze_trace(eng.trace, 3).deadlocks
        assert len(certs) == 2
        assert all("waiting for ranks" in c.message for c in certs)


class TestTagReuse:
    def test_reposted_tag_after_release_flagged(self):
        eng = Engine(2, functional=True, trace=True)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.post(("flag",))
                yield ctx.barrier()
                ctx.post(("flag",))  # recycled: wait already released
            else:
                yield ctx.wait(("flag",), 1)
                yield ctx.barrier()

        eng.run(prog)
        issues = lint_schedule(eng.trace, 2)
        reuse = [i for i in issues if i.kind == "tag-reuse"]
        assert len(reuse) == 1
        assert reuse[0].tag == ("flag",)
        assert "unique per step" in reuse[0].message

    def test_fresh_tags_per_step_clean(self):
        eng = Engine(2, functional=True, trace=True)

        def prog(ctx):
            for step in range(3):
                if ctx.rank == 0:
                    ctx.post(("flag", step))
                else:
                    yield ctx.wait(("flag", step), 1)
            if ctx.rank == 0:
                yield ctx.barrier()
            else:
                yield ctx.barrier()

        eng.run(prog)
        assert lint_schedule(eng.trace, 2) == []

    def test_run_boundary_resets_tag_tracking(self):
        eng = Engine(2, functional=True, trace=True)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.post(("flag",))
            else:
                yield ctx.wait(("flag",), 1)

        eng.run(prog)
        eng.run(prog)  # same tag, new run: engine cleared posts
        assert lint_schedule(eng.trace, 2) == []


class TestBarrierMismatch:
    def test_overlapping_groups_reported(self):
        eng = Engine(3, functional=True, trace=True)

        def prog(ctx):
            # ranks 0 and 1 each wait on a barrier containing the other,
            # but they named different groups: both block forever
            if ctx.rank == 0:
                yield ctx.barrier((0, 1))
            elif ctx.rank == 1:
                yield ctx.barrier((1, 2))

        with pytest.raises(DeadlockError):
            eng.run(prog)
        issues = lint_schedule(eng.trace, 3)
        mism = [i for i in issues if i.kind == "barrier-group-mismatch"]
        assert mism
        assert "overlap" in mism[0].message


class TestTraceIntegrity:
    def test_truncated_trace_unmatched_post_ref(self):
        trace = Trace()
        trace.add_event(SyncEvent(seq=5, rank=1, kind="wait",
                                  tag=("x",), count=1, matched=(3,)))
        issues = lint_schedule(trace, 2)
        assert [i.kind for i in issues] == ["unmatched-post-ref"]
        assert "truncated" in issues[0].message


class TestSlotOverwrite:
    def test_write_after_unordered_read_classified(self):
        eng = Engine(2, functional=True, trace=True)
        shm = eng.alloc_shared(64, name="win")
        priv = [eng.alloc(r, 64, fill=1.0, name=f"b[{r}]") for r in range(2)]

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(priv[0].view(0, 64), shm.view(0, 64))
            else:
                ctx.copy(shm.view(0, 64), priv[1].view(0, 64))
            return
            yield

        eng.run(prog)
        report = analyze_trace(eng.trace, 2)
        slots = [i for i in report.issues if i.kind == "slot-overwrite"]
        assert len(slots) == 1
        assert "consumed flag" in slots[0].message
