"""Adaptive-copy (Algorithm 1) tests, incl. the paper's capacity model."""

import pytest

from repro.copyengine.adaptive import AdaptiveCopy, adaptive_copy
from repro.machine.spec import NODE_A, NODE_B, available_cache_capacity, KB
from repro.sim.engine import Engine

from tests.conftest import TINY


class TestAdaptiveCopyDecision:
    def test_nt_requires_flag_and_overflow(self):
        ac = AdaptiveCopy(machine=TINY, nranks=8, work_set=1 << 30)
        assert ac.would_use_nt(True) is True
        assert ac.would_use_nt(False) is False

    def test_small_work_set_stays_temporal(self):
        ac = AdaptiveCopy(machine=TINY, nranks=8, work_set=1024)
        assert ac.would_use_nt(True) is False

    def test_capacity_from_paper_model(self):
        ac = AdaptiveCopy(machine=NODE_A, nranks=64, work_set=0)
        assert ac.cache_capacity == available_cache_capacity(NODE_A, 64)

    def test_rejects_negative_work_set(self):
        with pytest.raises(ValueError):
            AdaptiveCopy(machine=TINY, nranks=8, work_set=-1)

    def test_counters(self):
        eng = Engine(1, machine=TINY, functional=False)
        src = eng.alloc(0, 1024)
        dst = eng.alloc(0, 1024)
        ac = AdaptiveCopy(machine=TINY, nranks=1, work_set=1 << 30)

        def program(ctx):
            ac(ctx, dst.view(0, 512), src.view(0, 512), t_flag=True)
            ac(ctx, dst.view(512, 512), src.view(512, 512), t_flag=False)

        eng.run(program)
        assert ac.nt_copies == 1 and ac.t_copies == 1


class TestOneShotForm:
    def test_matches_algorithm_1(self):
        eng = Engine(1, machine=TINY, functional=False, trace=True)
        src = eng.alloc(0, 64)
        dst = eng.alloc(0, 64)

        def program(ctx):
            adaptive_copy(ctx, dst.view(), src.view(), t_flag=True,
                          work_set=100, cache_capacity=1)

        eng.run(program)
        assert eng.trace.records[0].nt is True


class TestPaperSwitchPoints:
    """Section 5.4's derived switch sizes for socket-aware MA allreduce:
    2176 KB on NodeA (p=64, Imax=256 KB), 1152 KB on NodeB (p=48,
    Imax=128 KB)."""

    @pytest.mark.parametrize("machine,p,imax,expect_kb", [
        (NODE_A, 64, 256 * KB, 2176),
        (NODE_B, 48, 128 * KB, 1152),
    ])
    def test_switch_size(self, machine, p, imax, expect_kb):
        from repro.models.nt_model import nt_switch_message_size, work_set_size

        s_switch = nt_switch_message_size("allreduce", machine, p, imax=imax)
        assert s_switch == expect_kb * KB

        # Algorithm 1 agrees: just below stays temporal, above goes NT
        for s, want in ((expect_kb * KB - 8 * KB, False),
                        (expect_kb * KB + 8 * KB, True)):
            w = work_set_size("allreduce", s, p, imax=imax)
            ac = AdaptiveCopy(machine=machine, nranks=p, work_set=w)
            assert ac.would_use_nt(True) is want
