"""Copy-primitive tests: policy resolution and primitive behaviour."""

import pytest

from repro.copyengine.primitives import (
    CopyPolicy,
    copy_with_policy,
    kernel_copy,
    memmove,
    nt_copy,
    resolve_nt,
    t_copy,
)
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024


class TestResolveNT:
    def test_t_never(self):
        assert resolve_nt("t", 1 << 30, 0) is False

    def test_nt_always(self):
        assert resolve_nt("nt", 8, 1 << 30) is True

    def test_memmove_threshold(self):
        assert resolve_nt("memmove", 2 << 20, 2 << 20) is True
        assert resolve_nt("memmove", (2 << 20) - 1, 2 << 20) is False

    def test_adaptive_needs_both_conditions(self):
        # Algorithm 1: NT iff t_flag and W > C
        assert resolve_nt("adaptive", 8, 0, t_flag=True, work_set=100,
                          cache_capacity=10) is True
        assert resolve_nt("adaptive", 8, 0, t_flag=True, work_set=10,
                          cache_capacity=100) is False
        assert resolve_nt("adaptive", 8, 0, t_flag=False, work_set=100,
                          cache_capacity=10) is False

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            resolve_nt("bogus", 8, 0)


class TestCopyPolicy:
    def test_uses_nt_delegates(self):
        p = CopyPolicy(kind="adaptive", t_flag=True, work_set=100,
                       cache_capacity=1)
        assert p.uses_nt(8, 0) is True


def _run_one(primitive, **kw):
    eng = Engine(1, machine=TINY, functional=True, trace=True)
    src = eng.alloc(0, 64 * KB, fill=1.0)
    dst = eng.alloc(0, 64 * KB, fill=0.0)

    def program(ctx):
        primitive(ctx, dst.view(), src.view(), **kw)

    eng.run(program)
    assert dst.array()[0] == 1.0  # data moved
    return eng.trace.records[0]


class TestPrimitives:
    def test_t_copy_is_temporal(self):
        assert _run_one(t_copy).nt is False

    def test_nt_copy_is_nontemporal(self):
        assert _run_one(nt_copy).nt is True

    def test_memmove_small_is_temporal(self):
        # 64 KB < TINY's 256 KB threshold
        assert _run_one(memmove).nt is False

    def test_memmove_large_is_nt(self):
        eng = Engine(1, machine=TINY, functional=False, trace=True)
        src = eng.alloc(0, 512 * KB)
        dst = eng.alloc(0, 512 * KB)

        def program(ctx):
            memmove(ctx, dst.view(), src.view())

        eng.run(program)
        assert eng.trace.records[0].nt is True

    def test_kernel_copy_never_nt(self):
        rec = _run_one(kernel_copy)
        assert rec.nt is False
        assert rec.policy == "kernel"

    def test_kernel_copy_charges_page_overhead(self):
        eng = Engine(1, machine=TINY, functional=False)
        src = eng.alloc(0, 64 * KB)
        d1 = eng.alloc(0, 64 * KB)
        d2 = eng.alloc(0, 64 * KB)

        def plain(ctx):
            t_copy(ctx, d1.view(), src.view())

        t_plain = eng.run(plain).times[0]

        def kern(ctx):
            kernel_copy(ctx, d2.view(), src.view())

        eng.memsys.reset_caches()
        t_kern = eng.run(kern).times[0]
        pages = 64 * KB // TINY.kernel_page_size
        min_extra = TINY.kernel_syscall_overhead + pages * TINY.kernel_page_overhead
        assert t_kern >= t_plain + min_extra * 0.9

    def test_kernel_copy_contention_scales(self):
        eng = Engine(1, machine=TINY, functional=False)
        src = eng.alloc(0, 64 * KB)
        d1 = eng.alloc(0, 64 * KB)
        d2 = eng.alloc(0, 64 * KB)

        t1 = eng.run(lambda ctx: kernel_copy(ctx, d1.view(), src.view(),
                                             contention=1)).times[0]
        eng.memsys.reset_caches()
        t8 = eng.run(lambda ctx: kernel_copy(ctx, d2.view(), src.view(),
                                             contention=8)).times[0]
        assert t8 > t1

    def test_kernel_copy_rejects_bad_contention(self):
        eng = Engine(1, machine=TINY, functional=False)
        src = eng.alloc(0, 64)
        dst = eng.alloc(0, 64)

        def program(ctx):
            kernel_copy(ctx, dst.view(), src.view(), contention=0)

        with pytest.raises(ValueError):
            eng.run(program)

    def test_copy_with_policy_dispatch(self):
        rec = _run_one(copy_with_policy, policy=CopyPolicy(kind="nt"))
        assert rec.nt is True
        rec = _run_one(copy_with_policy, policy=CopyPolicy(kind="kernel"))
        assert rec.policy == "kernel"
