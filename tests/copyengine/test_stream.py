"""Sliced STREAM benchmark tests (the Table 4 / Figure 3 engine)."""

import pytest

from repro.copyengine.stream import SlicedCopyBenchmark
from repro.machine.spec import NODE_A, KB, MB, GB

from tests.conftest import TINY


@pytest.fixture(scope="module")
def tiny_bench():
    return SlicedCopyBenchmark(TINY, nranks=8, total_bytes=64 * MB)


class TestSlicedCopy:
    def test_nt_beats_t_on_streaming(self, tiny_bench):
        t = tiny_bench.run_policy("t", 64 * KB)
        nt = tiny_bench.run_policy("nt", 64 * KB)
        assert nt.bandwidth > t.bandwidth
        # traffic ratio ~3:2
        assert t.traffic_bytes / nt.traffic_bytes == pytest.approx(1.5, rel=0.1)

    def test_t_copy_insensitive_to_slice_size(self, tiny_bench):
        b1 = tiny_bench.run_policy("t", 64 * KB).bandwidth
        b2 = tiny_bench.run_policy("t", 1 * MB).bandwidth
        assert b1 == pytest.approx(b2, rel=0.05)

    def test_memmove_switches_at_threshold(self, tiny_bench):
        # TINY threshold: 256 KB
        below = tiny_bench.run_policy("memmove", 128 * KB)
        above = tiny_bench.run_policy("memmove", 256 * KB)
        assert above.bandwidth > below.bandwidth * 1.2

    def test_table4_grid_shape(self, tiny_bench):
        grid = tiny_bench.table4([128 * KB, 256 * KB], policies=("t", "nt"))
        assert set(grid) == {"t", "nt"}
        assert all(len(v) == 2 for v in grid.values())

    def test_rejects_bad_slice(self, tiny_bench):
        with pytest.raises(ValueError):
            tiny_bench.run_policy("t", 0)

    def test_rejects_undivisible_total(self):
        with pytest.raises(ValueError):
            SlicedCopyBenchmark(TINY, nranks=7, total_bytes=64 * MB)


class TestCopyOutOverhead:
    """Figure 3's shape: flat high overhead below the memmove threshold,
    a cliff at the threshold, flat lower after."""

    def test_cliff_at_threshold(self):
        bench = SlicedCopyBenchmark(TINY, nranks=8, total_bytes=64 * MB)
        shared = 8 * MB
        below = bench.copy_out_overhead(shared, 128 * KB)
        at = bench.copy_out_overhead(shared, 256 * KB)
        above = bench.copy_out_overhead(shared, 512 * KB)
        assert below.time > at.time * 1.3
        assert at.time == pytest.approx(above.time, rel=0.1)

    def test_custom_threshold_moves_cliff(self):
        bench = SlicedCopyBenchmark(TINY, nranks=8, total_bytes=64 * MB)
        shared = 8 * MB
        # with a 1 MB threshold, 512 KB slices are still temporal
        r = bench.copy_out_overhead(shared, 512 * KB, nt_threshold=1 * MB)
        r2 = bench.copy_out_overhead(shared, 512 * KB)
        assert r.time > r2.time


@pytest.mark.slow
class TestNodeAScale:
    def test_node_a_table4_ratio(self):
        """NodeA shape: nt-copy ~1.5x t-copy, as in Table 4."""
        bench = SlicedCopyBenchmark(NODE_A, nranks=64, total_bytes=1 * GB)
        t = bench.run_policy("t", 512 * KB)
        nt = bench.run_policy("nt", 512 * KB)
        assert nt.bandwidth / t.bandwidth == pytest.approx(1.5, rel=0.15)
