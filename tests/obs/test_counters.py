"""Counter registry: trace aggregation, DAV cross-check, snapshots."""

import json

import pytest

from repro.analysis.dav import traced_dav
from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE_SCATTER
from repro.models.dav import implementation_dav
from repro.obs import Counters
from repro.sim.engine import Engine

from tests.conftest import TINY

P, S = 4, 4096


def traced_result(alg=MA_REDUCE_SCATTER, p=P, s=S, machine=TINY):
    eng = Engine(p, machine=machine, functional=False, trace=True)
    res = run_reduce_collective(alg, eng, s, imax=512)
    return eng, res


class TestFromTrace:
    def test_totals_match_trace_queries(self):
        eng, _ = traced_result()
        c = Counters.from_trace(eng.trace, nranks=P)
        assert c.total("copy_bytes") == eng.trace.copy_bytes()
        assert c.total("nt_copy_bytes") == eng.trace.copy_bytes(nt=True)
        assert c.total("reduce_bytes") == eng.trace.reduce_bytes()
        assert c.total("touch_bytes") == eng.trace.touch_bytes()

    def test_trace_dav_equals_analyzer_dav(self):
        # the acceptance cross-check: the counter registry's Theorem 3.1
        # accounting is exactly what analysis.dav computes node-wide
        eng, _ = traced_result()
        c = Counters.from_trace(eng.trace, nranks=P)
        assert c.trace_dav == traced_dav(eng.trace)

    @pytest.mark.parametrize("alg,kind", [
        (MA_REDUCE_SCATTER, "reduce_scatter"),
        (MA_ALLREDUCE, "allreduce"),
    ])
    def test_trace_dav_matches_theorem_formula(self, alg, kind):
        eng, _ = traced_result(alg)
        c = Counters.from_trace(eng.trace, nranks=P)
        want = implementation_dav(kind, "ma", S, P, m=TINY.sockets)
        assert c.trace_dav == want

    def test_sync_time_separated_from_busy(self):
        eng, _ = traced_result(MA_ALLREDUCE)  # barriers + flag waits
        c = Counters.from_trace(eng.trace, nranks=P)
        assert c.total("barrier_stall_time") > 0
        for rc in c:
            assert rc.busy_time > 0
            assert rc.busy_time + rc.stall_time <= rc.span + 1e-12
            assert 0.0 < rc.utilization <= 1.0

    def test_span_is_global_max_finish(self):
        eng, res = traced_result()
        c = Counters.from_trace(eng.trace, nranks=P)
        assert c.span == pytest.approx(res.time)
        assert all(rc.span == c.span for rc in c)


class TestFromRun:
    def test_traced_run_slices_cumulative_trace(self):
        # two collectives on one engine: the second result's counters
        # must cover only the second run
        eng = Engine(P, machine=TINY, functional=False, trace=True)
        run_reduce_collective(MA_REDUCE_SCATTER, eng, S, imax=512)
        first = Counters.from_trace(eng.trace, nranks=P)
        res2 = run_reduce_collective(MA_REDUCE_SCATTER, eng, S, imax=512)
        c2 = Counters.from_run(res2)
        assert c2.total("copy_bytes") == first.total("copy_bytes")
        assert c2.trace_dav == first.trace_dav

    def test_untraced_machine_run_uses_memory_traffic(self):
        eng = Engine(P, machine=TINY, functional=False, trace=False)
        res = run_reduce_collective(MA_REDUCE_SCATTER, eng, S, imax=512)
        c = Counters.from_run(res)
        assert not c.traced and c.machine
        assert c.total("copy_bytes") == 0  # no trace stream
        assert c.dav == res.traffic.dav  # logical load+store, summed
        assert c.span == pytest.approx(res.time)

    def test_traced_machine_run_has_both_families(self):
        eng, res = traced_result()
        c = Counters.from_run(res)
        assert c.traced and c.machine
        assert c.total("logical_load") > 0
        # both accountings agree on the same run
        assert c.dav == res.traffic.dav


class TestSnapshot:
    def test_snapshot_is_json_safe_and_complete(self):
        eng, res = traced_result()
        snap = Counters.from_run(res).snapshot()
        text = json.dumps(snap)  # must not raise
        back = json.loads(text)
        assert back["schema"] == "repro-obs/1"
        assert back["nranks"] == P
        assert back["traced"] and back["machine"]
        for name in ("copy_bytes", "reduce_bytes", "sync_wait_time",
                     "dav", "utilization"):
            assert len(back["per_rank"][name]) == P
        assert back["totals"]["copy_bytes"] == \
            sum(back["per_rank"]["copy_bytes"])
        assert "utilization" not in back["totals"]

    def test_snapshot_totals_match_registry(self):
        eng, res = traced_result()
        c = Counters.from_run(res)
        snap = c.snapshot()
        assert snap["totals"]["trace_dav"] == c.trace_dav
        assert snap["span"] == c.span
