"""The ``python -m repro trace`` command and its case resolution."""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.obs import validate_chrome_trace
from repro.obs.cli import resolve_case


class TestResolveCase:
    def test_exact_label(self):
        case = resolve_case("ma/reduce_scatter")
        assert case.collective == "ma" and case.kind == "reduce_scatter"

    def test_underscore_form(self):
        case = resolve_case("ma_reduce_scatter")
        assert case.collective == "ma" and case.kind == "reduce_scatter"

    def test_bare_collective_picks_first_kind(self):
        assert resolve_case("ma").collective == "ma"
        assert resolve_case("bcast").kind == "bcast"

    def test_bare_kind_prefers_ma(self):
        case = resolve_case("allreduce")
        assert case.collective == "ma" and case.kind == "allreduce"

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="ma/reduce_scatter"):
            resolve_case("alltoallw")


class TestTraceCommand:
    def test_exports_valid_trace_with_dav_check(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = cli_main(["trace", "ma_reduce_scatter", "--out", str(out),
                       "-n", "4", "-s", "4096"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "DAV ok" in text and "perfetto" in text
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        assert doc["otherData"]["collective"] == "ma/reduce_scatter"
        assert doc["otherData"]["counters"]["nranks"] == 4

    def test_machine_preset_and_timeline(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = cli_main(["trace", "allreduce", "--out", str(out),
                       "-n", "4", "--machine", "NodeA", "--timeline"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "timeline:" in text and "rank   0" in text

    def test_unknown_collective_fails_cleanly(self, tmp_path, capsys):
        rc = cli_main(["trace", "nope", "--out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "unknown collective" in capsys.readouterr().err
