"""Chrome trace-event export: schema golden test for the MA
reduce-scatter, flow-arrow structure, validator rejections."""

import json

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE_SCATTER
from repro.models.dav import implementation_dav
from repro.obs import (
    Counters,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.engine import Engine

from tests.conftest import TINY

P, S = 4, 4096


@pytest.fixture(scope="module")
def ma_doc():
    eng = Engine(P, machine=TINY, functional=False, trace=True)
    run_reduce_collective(MA_REDUCE_SCATTER, eng, S, imax=512)
    counters = Counters.from_trace(eng.trace, nranks=P)
    return eng.trace, chrome_trace(eng.trace,
                                   counters=counters.snapshot(),
                                   label="ma/reduce_scatter")


class TestGoldenSchema:
    """Field-by-field golden checks of the MA reduce-scatter export."""

    def test_document_shape(self, ma_doc):
        _, doc = ma_doc
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["schema"] == "repro-trace-event/1"
        assert doc["otherData"]["collective"] == "ma/reduce_scatter"

    def test_validator_accepts_and_counts(self, ma_doc):
        _, doc = ma_doc
        counts = validate_chrome_trace(doc)
        # process_name + (thread_name + thread_sort_index) per rank
        assert counts["M"] == 1 + 2 * P
        assert counts["X"] > 0 and counts["C"] > 0
        assert counts["s"] == counts["f"] > 0  # arrows come in pairs

    def test_rank_tracks_are_named(self, ma_doc):
        _, doc = ma_doc
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert names == {f"rank {r}" for r in range(P)}

    def test_data_slices_mirror_trace_records(self, ma_doc):
        trace, doc = ma_doc
        slices = [ev for ev in doc["traceEvents"]
                  if ev["ph"] == "X" and ev["cat"] == "data"]
        data_records = [r for r in trace.records
                        if not r.is_sync]
        assert len(slices) == len(data_records)
        for ev, rec in zip(slices, data_records):
            assert ev["tid"] == rec.rank
            assert ev["ts"] == pytest.approx(rec.t_start * 1e6)
            assert ev["dur"] == pytest.approx(rec.duration * 1e6)
            assert ev["args"]["nbytes"] == rec.nbytes

    def test_phase_spans_exported(self, ma_doc):
        trace, doc = ma_doc
        phases = [ev for ev in doc["traceEvents"]
                  if ev["ph"] == "X" and ev["cat"] == "phase"]
        assert len(phases) == len(trace.spans) > 0
        assert {ev["name"] for ev in phases} == {"reduce-wavefront"}

    def test_flow_arrows_connect_posts_to_waits(self, ma_doc):
        trace, doc = ma_doc
        starts = {ev["id"]: ev for ev in doc["traceEvents"]
                  if ev["ph"] == "s"}
        finishes = [ev for ev in doc["traceEvents"] if ev["ph"] == "f"]
        matched = {seq for w in trace.sync_events() if w.kind == "wait"
                   for seq in w.matched}
        assert set(starts) == matched
        for fin in finishes:
            start = starts[fin["id"]]
            assert start["ts"] <= fin["ts"] + 1e-9  # arrows point forward

    def test_counter_track_is_cumulative_and_final(self, ma_doc):
        trace, doc = ma_doc
        samples = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        copies = [ev["args"]["copy_bytes"] for ev in samples]
        assert copies == sorted(copies)  # monotone accumulation
        assert copies[-1] == trace.copy_bytes()
        assert samples[-1]["args"]["reduce_bytes"] == trace.reduce_bytes()

    def test_embedded_counters_match_theorem(self, ma_doc):
        _, doc = ma_doc
        totals = doc["otherData"]["counters"]["totals"]
        want = implementation_dav("reduce_scatter", "ma", S, P,
                                  m=TINY.sockets)
        assert totals["trace_dav"] == want


class TestWrite:
    def test_round_trips_through_disk(self, tmp_path):
        eng = Engine(P, machine=TINY, functional=False, trace=True)
        run_reduce_collective(MA_ALLREDUCE, eng, S, imax=512)
        path = write_chrome_trace(eng.trace, tmp_path / "t.json")
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        phases = {ev["name"] for ev in doc["traceEvents"]
                  if ev["ph"] == "X" and ev.get("cat") == "phase"}
        assert phases == {"reduce-wavefront", "copy-out"}


class TestValidator:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_empty_events(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_unknown_phase_with_index(self):
        doc = {"traceEvents": [{"ph": "Z", "pid": 0}]}
        with pytest.raises(ValueError, match=r"traceEvents\[0\].*'Z'"):
            validate_chrome_trace(doc)

    def test_rejects_missing_required_key(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": 0.0},
        ]}
        with pytest.raises(ValueError, match="requires 'dur'"):
            validate_chrome_trace(doc)

    def test_rejects_non_finite_timestamp(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x",
             "ts": float("nan"), "dur": 1.0},
        ]}
        with pytest.raises(ValueError, match="finite"):
            validate_chrome_trace(doc)
