"""NT switch-point model tests (Sections 4.2 / 5.4)."""

import pytest

from repro.machine.spec import NODE_A, NODE_B, KB, MB
from repro.models.nt_model import (
    KNOWN_KINDS,
    decision_guards,
    nt_switch_message_size,
    region_modulus,
    uses_nt_store,
    work_set_size,
)


class TestWorkSetSize:
    def test_allreduce(self):
        assert work_set_size("allreduce", 100, 8, imax=10) == 1680

    def test_bcast(self):
        # Algorithm 3: W = s + s(p-1) + 2I
        assert work_set_size("bcast", 100, 8, imax=10) == 820

    def test_allgather(self):
        # Algorithm 4: W = sp + sp^2 + 2pI
        assert work_set_size("allgather", 100, 8, imax=10) == 7360

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            work_set_size("alltoall", 1, 2)


class TestSwitchPoints:
    def test_node_a_allreduce_2176kb(self):
        """Section 5.4: 'on NodeA... when the message size is larger
        than 2176 KB, YHCCL starts to use nt-copy'."""
        s = nt_switch_message_size("allreduce", NODE_A, 64, imax=256 * KB)
        assert s == 2176 * KB

    def test_node_b_allreduce_1152kb(self):
        s = nt_switch_message_size("allreduce", NODE_B, 48, imax=128 * KB)
        assert s == 1152 * KB

    def test_allgather_switches_much_earlier(self):
        ar = nt_switch_message_size("allreduce", NODE_A, 64, imax=1 * MB)
        ag = nt_switch_message_size("allgather", NODE_A, 64, imax=1 * MB)
        assert ag < ar / 10

    def test_uses_nt_store_consistency(self):
        s = 2176 * KB
        assert not uses_nt_store("allreduce", s - 8 * KB, NODE_A, 64,
                                 imax=256 * KB)
        assert uses_nt_store("allreduce", s + 8 * KB, NODE_A, 64,
                             imax=256 * KB)

    def test_temporal_flag_gates_everything(self):
        assert not uses_nt_store("allreduce", 1 << 30, NODE_A, 64,
                                 t_flag=False)

    def test_never_negative(self):
        # tiny cache machines may always use NT, never a negative size
        assert nt_switch_message_size("allgather", NODE_B, 48,
                                      imax=4 * MB) == 0.0


class TestDecisionGuards:
    def test_unknown_kind_raises_keyerror_naming_known_kinds(self):
        # an unmodeled collective must fail loudly, not silently merge
        # distinct schedules into one region (same discipline as the
        # timing model's _SYNC_STEPS)
        with pytest.raises(KeyError, match="alltoall") as exc:
            decision_guards("alltoall", 64 * KB, 4, NODE_A,
                            imax=256 * KB)
        for kind in KNOWN_KINDS:
            assert kind in str(exc.value)

    def test_every_known_kind_is_guarded(self):
        for kind in KNOWN_KINDS:
            g = decision_guards(kind, 64 * KB, 4, NODE_A, imax=256 * KB)
            assert g["kind"] == kind
            assert "shape" in g and "nt" in g and "regime" in g

    def test_bad_imax_rejected(self):
        with pytest.raises(ValueError, match="imax"):
            decision_guards("allreduce", 64 * KB, 4, NODE_A, imax=0)

    def test_region_modulus_clears_all_partition_grains(self):
        # 128 * lcm(p, per-socket group sizes): NodeA p=4 has 2 ranks
        # per socket -> lcm(4, 2) = 4 -> 512; p=2 -> lcm(2, 1) = 2
        assert region_modulus(4, NODE_A) == 512
        assert region_modulus(2, NODE_A) == 256
