"""Additional timing-model coverage: all kinds, unknown algorithms,
cache-resident branch."""

import pytest

from repro.machine.spec import NODE_A, KB, MB
from repro.models.timing import predict_time


class TestAllKinds:
    @pytest.mark.parametrize("kind,alg", [
        ("reduce_scatter", "ma"),
        ("reduce_scatter", "ring"),
        ("reduce", "ma"),
        ("reduce", "dpml"),
        ("allreduce", "socket-ma"),
        ("allreduce", "rabenseifner"),
    ])
    def test_positive_estimates(self, kind, alg):
        t = predict_time(kind, alg, 4 * MB, 64, NODE_A)
        assert t > 0

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError):
            predict_time("allreduce", "quantum", 1 * MB, 64, NODE_A)

    def test_no_silent_sync_step_fallback(self):
        # "xpmem" has a DAV formula but no sync-step model; the old code
        # silently borrowed MA's step count and returned a wrong estimate
        with pytest.raises(KeyError, match="xpmem"):
            predict_time("allreduce", "xpmem", 1 * MB, 64, NODE_A)

    def test_sync_step_error_lists_known_algorithms(self):
        with pytest.raises(KeyError, match="ma.*ring|ring.*ma"):
            predict_time("allreduce", "xpmem", 1 * MB, 64, NODE_A)

    def test_cache_resident_branch_cheaper(self):
        # tiny message: the W <= C branch divides traffic by 4
        small = predict_time("allreduce", "ma", 64 * KB, 64, NODE_A)
        big = predict_time("allreduce", "ma", 64 * MB, 64, NODE_A)
        assert small < big / 100

    def test_socket_ma_fewer_syncs_than_ma_at_small(self):
        small_ma = predict_time("allreduce", "ma", 8 * KB, 64, NODE_A)
        small_sa = predict_time("allreduce", "socket-ma", 8 * KB, 64,
                                NODE_A)
        assert small_sa < small_ma
