"""Closed-form DAV tests: paper rows, implementation rows, and exact
agreement between the simulator and the implementation formulas for
every (collective, algorithm) pair — the central fidelity check."""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.dpml import (
    DPML2_ALLREDUCE,
    DPML_ALLREDUCE,
    DPML_REDUCE,
    DPML_REDUCE_SCATTER,
)
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.collectives.rabenseifner import (
    RABENSEIFNER_ALLREDUCE,
    RABENSEIFNER_REDUCE_SCATTER,
)
from repro.collectives.rg import RGAllreduce, RGReduce
from repro.collectives.ring import RING_ALLREDUCE, RING_REDUCE_SCATTER
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
)
from repro.models.dav import (
    dav_allreduce,
    dav_reduce,
    dav_reduce_scatter,
    implementation_dav,
)
from repro.sim.engine import Engine

from tests.conftest import TINY

KB = 1024
S = 64 * KB
P = 64


class TestPaperTableRows:
    """Spot-check the formulas against hand-evaluated table entries."""

    def test_table1_reduce_scatter(self):
        assert dav_reduce_scatter("ring", S, P) == 5 * S * 63
        assert dav_reduce_scatter("dpml", S, P) == S * (5 * P - 1)
        assert dav_reduce_scatter("ma", S, P) == S * (3 * P - 1)
        assert dav_reduce_scatter("socket-ma", S, P, m=2) == S * (3 * P + 1)
        # power-of-two Rabenseifner == ring
        assert dav_reduce_scatter("rabenseifner", S, P) == pytest.approx(
            5 * S * 63
        )

    def test_table2_allreduce(self):
        assert dav_allreduce("ring", S, P) == 7 * S * 63
        assert dav_allreduce("dpml", S, P) == S * (7 * P - 1)
        assert dav_allreduce("ma", S, P) == S * (5 * P - 1)
        assert dav_allreduce("socket-ma", S, P, m=2) == S * (5 * P + 1)
        assert dav_allreduce("xpmem", S, P) == 5 * S * 63

    def test_two_level_dpml2_allreduce(self):
        # both sockets hold >= 2 ranks: collapses to the flat dpml
        # count s(7p - 3)
        assert dav_allreduce("dpml2", S, 8, m=2) == S * (7 * 8 - 3)
        assert dav_allreduce("dpml2", S, 64, m=2) == S * (7 * 64 - 3)
        # singleton sockets copy (2s) instead of reducing, so small p
        # diverges: p=2 over two sockets is 4s in + 2*2s level-1 +
        # 3s combine + 4s out = 15s, not 11s
        assert dav_allreduce("dpml2", S, 2, m=2) == 15 * S
        # odd p: compact ceil split is [2, 1] -> 12s + (3s + 2s) + 3s
        assert dav_allreduce("dpml2", S, 3, m=2) == 20 * S
        # one socket: no cross-socket combine, just the level-2 copy
        # (8s in + 3s*3 level-1 + 2s copy + 8s out)
        assert dav_allreduce("dpml2", S, 4, m=1) == 27 * S

    def test_table3_reduce(self):
        assert dav_reduce("dpml", S, P) == S * (5 * P + 1)
        assert dav_reduce("ma", S, P) == S * (3 * P + 1)
        assert dav_reduce("socket-ma", S, P, m=2) == S * (3 * P + 3)

    def test_yhccl_beats_dpml_by_40_percent_class(self):
        """'YHCCL can eliminate around 40% unnecessary data movements'
        compared to DPML (Section 3.3)."""
        ratio = dav_reduce_scatter("ma", S, P) / dav_reduce_scatter(
            "dpml", S, P
        )
        assert 0.55 < ratio < 0.65

    def test_ma_smallest_for_p_ge_4(self):
        for p in (4, 8, 48, 64):
            ma = dav_allreduce("ma", S, p)
            for other in ("ring", "dpml", "rg"):
                assert ma < dav_allreduce(other, S, p)

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError):
            dav_allreduce("nope", S, P)
        with pytest.raises(ValueError):
            dav_reduce_scatter("nope", S, P)
        with pytest.raises(ValueError):
            dav_reduce("nope", S, P)


#: every implemented (kind, algorithm-name, instance, kwargs)
CASES = [
    ("reduce_scatter", "ma", MA_REDUCE_SCATTER, {"imax": KB}),
    ("allreduce", "ma", MA_ALLREDUCE, {"imax": KB}),
    ("reduce", "ma", MA_REDUCE, {"imax": KB}),
    ("reduce_scatter", "socket-ma", SOCKET_MA_REDUCE_SCATTER, {"imax": KB}),
    ("allreduce", "socket-ma", SOCKET_MA_ALLREDUCE, {"imax": KB}),
    ("reduce", "socket-ma", SOCKET_MA_REDUCE, {"imax": KB}),
    ("reduce_scatter", "ring", RING_REDUCE_SCATTER, {}),
    ("allreduce", "ring", RING_ALLREDUCE, {}),
    ("reduce_scatter", "rabenseifner", RABENSEIFNER_REDUCE_SCATTER, {}),
    ("allreduce", "rabenseifner", RABENSEIFNER_ALLREDUCE, {}),
    ("reduce_scatter", "dpml", DPML_REDUCE_SCATTER, {}),
    ("allreduce", "dpml", DPML_ALLREDUCE, {}),
    ("allreduce", "dpml2", DPML2_ALLREDUCE, {}),
    ("reduce", "dpml", DPML_REDUCE, {}),
    ("allreduce", "rg", RGAllreduce(branch=2, slice_size=4 * KB), {}),
    ("reduce", "rg", RGReduce(branch=2, slice_size=4 * KB), {}),
]


class TestSimulatorMatchesFormulasExactly:
    """The core fidelity contract: the event simulator's counted DAV
    equals the closed-form implementation formula, byte for byte."""

    @pytest.mark.parametrize("kind,name,alg,kw", CASES,
                             ids=[f"{k}-{n}" for k, n, _, _ in CASES])
    @pytest.mark.parametrize("s", [16 * KB, 100 * KB])
    def test_exact(self, kind, name, alg, kw, s):
        eng = Engine(8, machine=TINY, functional=False)
        res = run_reduce_collective(alg, eng, s, **kw)
        assert res.dav == implementation_dav(kind, name, s, 8, m=2, k=2)

    def test_paper_vs_impl_documented_gaps(self):
        """The documented O(s) reconciliations between paper rows and
        implementation counts."""
        assert dav_allreduce("dpml", S, P, paper=False) == S * (7 * P - 3)
        assert dav_reduce("dpml", S, P, paper=False) == S * (5 * P - 1)
        assert (
            dav_allreduce("ring", S, P, paper=False)
            - dav_allreduce("ring", S, P, paper=True)
            == 2 * S
        )
