"""Algebraic timing model tests: order-of-magnitude agreement with the
event simulator, and correct qualitative orderings."""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.ring import RING_ALLREDUCE
from repro.machine.spec import NODE_A, KB, MB
from repro.models.timing import predict_time

from tests.conftest import TINY
from repro.sim.engine import Engine


class TestQualitativeOrderings:
    def test_ma_predicted_faster_than_ring_large(self):
        s = 64 * MB
        t_ma = predict_time("allreduce", "ma", s, 64, NODE_A)
        t_ring = predict_time("allreduce", "ring", s, 64, NODE_A)
        assert t_ma < t_ring

    def test_nt_stores_predicted_faster(self):
        s = 64 * MB
        t_nt = predict_time("allreduce", "socket-ma", s, 64, NODE_A,
                            nt_stores=True)
        t_t = predict_time("allreduce", "socket-ma", s, 64, NODE_A,
                           nt_stores=False)
        assert t_nt < t_t

    def test_monotone_in_message_size(self):
        ts = [
            predict_time("allreduce", "ma", s, 64, NODE_A)
            for s in (1 * MB, 8 * MB, 64 * MB)
        ]
        assert ts[0] < ts[1] < ts[2]


class TestSyncStepSocketCount:
    """``socket-ma``'s sync-step count follows the machine's socket
    count (regression: the form was hard-coded to two sockets)."""

    def test_two_sockets_reproduce_the_original_form(self):
        from repro.models.timing import _SYNC_STEPS

        s, p, imax = 64 * MB, 64, 256 * KB
        assert _SYNC_STEPS["socket-ma"](s, p, imax, 2) == \
            (p // 2 - 1) * max(1, s // (p * imax)) + 1

    def test_one_socket_degenerates_to_flat_ma(self):
        from repro.models.timing import _SYNC_STEPS

        s, p, imax = 64 * MB, 64, 256 * KB
        assert _SYNC_STEPS["socket-ma"](s, p, imax, 1) == \
            _SYNC_STEPS["ma"](s, p, imax, 1)

    def test_more_sockets_fewer_intra_group_steps(self):
        from repro.models.timing import _SYNC_STEPS

        s, p, imax = 64 * MB, 64, 256 * KB
        steps = [_SYNC_STEPS["socket-ma"](s, p, imax, m)
                 for m in (1, 2, 4)]
        # smaller per-socket groups synchronize in fewer rounds; the
        # extra cross-socket combines are far cheaper than the rounds
        # they replace
        assert steps[0] > steps[1] > steps[2]

    def test_predict_time_reads_machine_sockets(self):
        import dataclasses

        s = 64 * MB
        four = dataclasses.replace(NODE_A, sockets=4)
        t2 = predict_time("allreduce", "socket-ma", s, 64, NODE_A)
        t4 = predict_time("allreduce", "socket-ma", s, 64, four)
        assert t2 != t4, "socket count must reach the sync-step model"


class TestSimulatorAgreement:
    """The coarse model should land within ~3x of the simulator on
    bandwidth-bound configurations (it has no cache simulation)."""

    @pytest.mark.parametrize("alg,name", [
        (MA_ALLREDUCE, "ma"),
        (RING_ALLREDUCE, "ring"),
    ])
    def test_within_factor(self, alg, name):
        s = 2 * MB
        eng = Engine(8, machine=TINY, functional=False)
        sim = run_reduce_collective(alg, eng, s, imax=64 * KB).time
        model = predict_time("allreduce", name, s, 8, TINY, imax=64 * KB)
        assert model / sim < 3.5 and sim / model < 3.5
