"""Algebraic timing model tests: order-of-magnitude agreement with the
event simulator, and correct qualitative orderings."""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.ring import RING_ALLREDUCE
from repro.machine.spec import NODE_A, KB, MB
from repro.models.timing import predict_time

from tests.conftest import TINY
from repro.sim.engine import Engine


class TestQualitativeOrderings:
    def test_ma_predicted_faster_than_ring_large(self):
        s = 64 * MB
        t_ma = predict_time("allreduce", "ma", s, 64, NODE_A)
        t_ring = predict_time("allreduce", "ring", s, 64, NODE_A)
        assert t_ma < t_ring

    def test_nt_stores_predicted_faster(self):
        s = 64 * MB
        t_nt = predict_time("allreduce", "socket-ma", s, 64, NODE_A,
                            nt_stores=True)
        t_t = predict_time("allreduce", "socket-ma", s, 64, NODE_A,
                           nt_stores=False)
        assert t_nt < t_t

    def test_monotone_in_message_size(self):
        ts = [
            predict_time("allreduce", "ma", s, 64, NODE_A)
            for s in (1 * MB, 8 * MB, 64 * MB)
        ]
        assert ts[0] < ts[1] < ts[2]


class TestSimulatorAgreement:
    """The coarse model should land within ~3x of the simulator on
    bandwidth-bound configurations (it has no cache simulation)."""

    @pytest.mark.parametrize("alg,name", [
        (MA_ALLREDUCE, "ma"),
        (RING_ALLREDUCE, "ring"),
    ])
    def test_within_factor(self, alg, name):
        s = 2 * MB
        eng = Engine(8, machine=TINY, functional=False)
        sim = run_reduce_collective(alg, eng, s, imax=64 * KB).time
        model = predict_time("allreduce", name, s, 8, TINY, imax=64 * KB)
        assert model / sim < 3.5 and sim / model < 3.5
