"""Trace container tests."""

from repro.sim.trace import OpRecord, Trace


def rec(rank=0, kind="copy", nbytes=64, nt=False, t0=0.0, t1=1.0):
    return OpRecord(rank=rank, kind=kind, nbytes=nbytes, nt=nt,
                    t_start=t0, t_end=t1)


class TestTrace:
    def test_len_and_iter(self):
        t = Trace()
        t.add(rec())
        t.add(rec(kind="reduce_acc"))
        assert len(t) == 2
        assert [r.kind for r in t] == ["copy", "reduce_acc"]

    def test_by_rank(self):
        t = Trace()
        t.add(rec(rank=0))
        t.add(rec(rank=1))
        t.add(rec(rank=1))
        assert len(t.by_rank(1)) == 2

    def test_copy_bytes_by_nt(self):
        t = Trace()
        t.add(rec(nbytes=10, nt=False))
        t.add(rec(nbytes=20, nt=True))
        t.add(rec(kind="reduce_acc", nbytes=100))
        assert t.copy_bytes() == 30
        assert t.copy_bytes(nt=True) == 20
        assert t.copy_bytes(nt=False) == 10
        assert t.reduce_bytes() == 100

    def test_duration(self):
        r = rec(t0=1.5, t1=2.0)
        assert r.duration == 0.5

    def test_summary(self):
        t = Trace()
        t.add(rec())
        t.add(rec(kind="reduce_out", nbytes=7))
        s = t.summary()
        assert s["ops"] == 2
        assert s["by_kind"] == {"copy": 1, "reduce_out": 1}
        assert s["reduce_bytes"] == 7
