"""Scheduler-policy plumbing: the default must be byte-for-byte the
pre-refactor engine, and the controlled scheduler must expose the
enabled set and step footprints the model checker depends on."""

import numpy as np
import pytest

from repro.collectives.common import make_env, run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE
from repro.sim.engine import Engine
from repro.sim.replay import trace_to_json
from repro.sim.scheduler import ControlledScheduler, FifoScheduler


def _traced_run(**engine_kwargs) -> str:
    eng = Engine(4, functional=True, seed=11, trace=True, **engine_kwargs)
    run_reduce_collective(MA_ALLREDUCE, eng, 1024, imax=256)
    return trace_to_json(eng.trace)


class TestDefaultPolicyRegression:
    def test_explicit_fifo_equals_default(self):
        """Engine(scheduler=FifoScheduler()) is the default policy."""
        assert _traced_run() == _traced_run(scheduler=FifoScheduler())

    @pytest.mark.parametrize("schedule_seed", [1, 17, 99])
    def test_fifo_rng_consumption_matches_seed_engine(self, schedule_seed):
        """The fuzzing path (schedule_seed) draws from the RNG in the
        exact historical pattern: same seed -> same trace, different
        seeds -> (generally) different event interleavings."""
        a = _traced_run(schedule_seed=schedule_seed)
        b = _traced_run(schedule_seed=schedule_seed,
                        scheduler=FifoScheduler())
        assert a == b

    def test_results_identical_across_policies(self):
        """Functional output is policy-invariant for a correct program."""
        outs = []
        for sched in (None, FifoScheduler(), ControlledScheduler()):
            eng = Engine(4, functional=True, seed=5, trace=True,
                         scheduler=sched)
            env = make_env(MA_ALLREDUCE, engine=eng, s=512, imax=128)
            eng.run(lambda ctx: MA_ALLREDUCE.program(ctx, env))
            outs.append(env.recvbufs[0].array().copy())
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])


class TestControlledScheduler:
    def test_records_steps_with_enabled_sets(self):
        sched = ControlledScheduler()
        eng = Engine(3, functional=True, trace=True, scheduler=sched)
        run_reduce_collective(MA_REDUCE, eng, 384, imax=128)
        assert sched.steps, "no steps recorded"
        for step in sched.steps:
            assert step.rank in step.enabled
        # every rank runs to completion exactly once
        assert sum(1 for s in sched.steps if s.completed) == 3
        # fallback is deterministic: replaying the recorded schedule
        # reproduces it exactly
        replay = ControlledScheduler(choices=sched.schedule)
        eng2 = Engine(3, functional=True, trace=True, scheduler=replay)
        run_reduce_collective(MA_REDUCE, eng2, 384, imax=128)
        assert replay.schedule == sched.schedule
        assert not replay.diverged

    def test_forced_prefix_is_followed(self):
        probe = ControlledScheduler()
        eng = Engine(3, functional=True, trace=True, scheduler=probe)
        run_reduce_collective(MA_REDUCE, eng, 384, imax=128)
        # force a different first step than the min-rank default
        first_enabled = probe.steps[0].enabled
        alt = max(first_enabled)
        forced = ControlledScheduler(choices=[alt])
        eng2 = Engine(3, functional=True, trace=True, scheduler=forced)
        run_reduce_collective(MA_REDUCE, eng2, 384, imax=128)
        assert forced.schedule[0] == alt
        assert not forced.diverged

    def test_footprints_cover_data_and_sync(self):
        sched = ControlledScheduler()
        eng = Engine(2, functional=True, trace=True, scheduler=sched)

        shm = eng.alloc_shared(64)
        src = eng.alloc(0, 64, fill=3.0)
        dst = eng.alloc(1, 64, fill=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(), src.view())
                ctx.post(("ready",))
            else:
                yield ctx.wait(("ready",))
                ctx.copy(dst.view(), shm.view())

        eng.run(prog)
        writes = [w for s in sched.steps for w in s.writes]
        reads = [r for s in sched.steps for r in s.reads]
        posts = [p for s in sched.steps for p in s.posts]
        waits = [w for s in sched.steps for w in s.waits]
        assert (shm.buf_id, 0, 64) in writes and (shm.buf_id, 0, 64) in reads
        assert posts == [("ready",)]
        assert waits == [("ready",)]

    def test_light_tracing_refused(self):
        # footprints come from AccessEvents; the compiled-capture light
        # mode drops them, which would silently break DPOR conflicts
        sched = ControlledScheduler()
        eng = Engine(2, functional=True, trace=True,
                     trace_accesses=False, scheduler=sched)

        def prog(ctx):
            return
            yield  # pragma: no cover - makes prog a generator

        with pytest.raises(ValueError, match="trace_accesses"):
            eng.run(prog)
