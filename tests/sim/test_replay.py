"""Trace serialization, schedule signatures, and the Figure 6 golden
schedule."""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_REDUCE_SCATTER
from repro.sim.engine import Engine
from repro.sim.replay import (
    diff_schedules,
    schedule_signature,
    trace_from_json,
    trace_to_json,
)
from repro.sim.trace import OpRecord, Trace

from tests.conftest import TINY


def traced_ma(p=3, s=240, imax=10**9, schedule_seed=None):
    eng = Engine(p, machine=TINY, functional=True, trace=True,
                 schedule_seed=schedule_seed)
    run_reduce_collective(MA_REDUCE_SCATTER, eng, s, imax=imax)
    return eng.trace


class TestRoundTrip:
    def test_lossless(self):
        trace = traced_ma()
        back = trace_from_json(trace_to_json(trace))
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a == b

    def test_spans_round_trip(self):
        trace = traced_ma()  # MA pipeline emits reduce-wavefront spans
        assert trace.spans
        back = trace_from_json(trace_to_json(trace))
        assert back.spans == trace.spans

    def test_spanless_payloads_still_load(self):
        # pre-span trace files have no "spans" key
        back = trace_from_json('{"version": 1, "records": []}')
        assert back.spans == []

    def test_rejects_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            trace_from_json('{"version": 9, "records": []}')

    def test_bad_version_error_names_supported_versions(self):
        with pytest.raises(ValueError, match=r"supported versions: 1"):
            trace_from_json('{"version": 9, "records": []}')

    def test_missing_version_rejected_clearly(self):
        with pytest.raises(ValueError, match="unsupported trace schema"):
            trace_from_json('{"records": []}')

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            trace_from_json('[1, 2, 3]')

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown trace fields"):
            trace_from_json(
                '{"version": 1, "records": [{"rank": 0, "kind": "copy", '
                '"nbytes": 8, "surprise": 1}]}'
            )


class TestSignatures:
    def test_identical_runs_identical_signature(self):
        assert schedule_signature(traced_ma()) == schedule_signature(
            traced_ma()
        )

    def test_schedule_invariant_under_fuzzing(self):
        """Per-rank op sequences don't depend on the engine schedule."""
        base = schedule_signature(traced_ma())
        for seed in (7, 19):
            other = schedule_signature(traced_ma(schedule_seed=seed))
            assert diff_schedules(base, other) is None

    def test_different_sizes_diverge(self):
        a = schedule_signature(traced_ma(s=240))
        b = schedule_signature(traced_ma(s=480))
        assert diff_schedules(a, b) is not None

    def test_diff_pinpoints_rank_and_op(self):
        a = {0: [("copy", 8, False)]}
        b = {0: [("copy", 16, False)]}
        assert "rank 0 op 0" in diff_schedules(a, b)
        c = {0: [("copy", 8, False), ("copy", 8, False)]}
        assert "lengths differ" in diff_schedules(a, c)

    def test_compute_records_excluded(self):
        t = Trace()
        t.add(OpRecord(rank=0, kind="compute", nbytes=0))
        t.add(OpRecord(rank=0, kind="copy", nbytes=8))
        assert schedule_signature(t) == {0: [("copy", 8, False)]}


class TestFigure6GoldenSchedule:
    """Pin the paper's Figure 6 schedule exactly, for p=3.

    With three ranks (a, b, c) and three slices, the steps are:
      S0: rank a/b/c *copies* slice 1/2/0 (0-indexed) into shm;
      S1: rank a/b/c *reduces* (A += B) slice 2/0/1;
      S2: rank a/b/c *reduces* (C = A + B) slice 0/1/2 into its recvbuf.
    Each rank therefore performs exactly: 1 copy, 1 reduce_acc,
    1 reduce_out — in that order, all of slice size s/3.
    """

    def test_per_rank_op_pattern(self):
        s = 240
        slice_bytes = s // 3
        sig = schedule_signature(traced_ma(p=3, s=s))
        for rank in range(3):
            assert sig[rank] == [
                ("copy", slice_bytes, False),
                ("reduce_acc", slice_bytes, False),
                ("reduce_out", slice_bytes, False),
            ], f"rank {rank}"

    def test_copy_targets_follow_figure6(self):
        """Rank r copies slice (r+1) mod 3 — verified via trace order
        and shm destinations."""
        trace = traced_ma(p=3, s=240)
        copies = [r for r in trace if r.kind == "copy"]
        assert len(copies) == 3
        assert {c.rank for c in copies} == {0, 1, 2}
        assert all(c.dst.startswith("shm") for c in copies)
        # final reduce lands in each owner's receiving buffer
        outs = [r for r in trace if r.kind == "reduce_out"]
        assert sorted(o.dst for o in outs) == [
            "recv[0]", "recv[1]", "recv[2]"
        ]
        assert all(o.dst == f"recv[{o.rank}]" for o in outs)


class TestRoundTripProperty:
    from hypothesis import given, settings, strategies as st

    @given(st.lists(
        st.tuples(
            st.integers(0, 7),
            st.sampled_from(["copy", "reduce_acc", "reduce_out",
                             "compute"]),
            st.integers(0, 1 << 20),
            st.booleans(),
            st.floats(0, 1e-3, allow_nan=False),
            st.floats(0, 1e-3, allow_nan=False),
        ),
        min_size=0, max_size=40,
    ))
    @settings(max_examples=40, deadline=None)
    def test_random_traces_round_trip(self, recs):
        t = Trace()
        for rank, kind, n, nt, t0, dt in recs:
            t.add(OpRecord(rank=rank, kind=kind, nbytes=n, nt=nt,
                           t_start=t0, t_end=t0 + dt))
        back = trace_from_json(trace_to_json(t))
        assert list(back) == list(t)
        assert schedule_signature(back) == schedule_signature(t)
