"""Compiled schedule evaluator: bitwise equivalence with the coroutine
engine, document round-trips, and lowering failure modes.

The equivalence matrix is the compiled path's load-bearing contract:
for every collective family, rank count and message size the replayed
completion time, DAV and full ``repro-obs/1`` counter snapshot must be
*identical* (not approximately equal) to what the coroutine bench cell
reports.  ``==`` on floats below is deliberate.
"""

import json
import math

import numpy as np
import pytest

from repro.analysis.static.ir import OpNode, ScheduleIR
from repro.bench.compiled import capture_schedule, replay_cell
from repro.bench.spec import (
    allgather_spec,
    bcast_spec,
    reduce_spec,
    vendor_spec,
    yhccl_spec,
)
from repro.library.communicator import Communicator
from repro.machine.spec import PRESETS
from repro.sim.compiled import (
    CompiledSchedule,
    CompileError,
    ScheduleSchemaError,
    lower,
    schedule_from_doc,
    schedule_to_doc,
)

MACHINE = PRESETS["NodeA"]

#: one representative per collective kind and per reduce algorithm —
#: every registered collective family crosses the compiled path
SPECS = {
    "allreduce/socket-ma": reduce_spec("socket-ma", "allreduce", "adaptive"),
    "allreduce/ring": reduce_spec("ring", "allreduce"),
    "allreduce/rabenseifner": reduce_spec("rabenseifner", "allreduce"),
    "allreduce/rg": reduce_spec("rg", "allreduce", branch=2),
    "allreduce/dpml": reduce_spec("dpml", "allreduce"),
    "reduce/ma": reduce_spec("ma", "reduce", "adaptive"),
    "reduce_scatter/socket-ma": reduce_spec("socket-ma", "reduce_scatter",
                                            "adaptive"),
    "bcast/pipelined": bcast_spec("pipelined"),
    "allgather/pipelined": allgather_spec("pipelined"),
    "yhccl/allreduce": yhccl_spec("allreduce"),
    "vendor/Open MPI": vendor_spec("Open MPI", "allreduce"),
}

SIZES = (4096, 65536, 262144)


def coroutine_cell(spec, p, nbytes):
    comm = Communicator(p, machine=MACHINE, functional=False)
    return spec.resolve()(comm, nbytes)


class TestEquivalence:
    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_bitwise_equal_across_sizes(self, name, p):
        spec = SPECS[name]
        for nbytes in SIZES:
            ref = coroutine_cell(spec, p, nbytes)
            out = replay_cell(capture_schedule(spec, MACHINE, p, nbytes))
            assert out["time"] == ref.time, (name, p, nbytes)
            assert out["dav"] == ref.dav, (name, p, nbytes)
            assert out["algorithm"] == ref.algorithm, (name, p, nbytes)
            assert out["counters"] == ref.counters, (name, p, nbytes)

    def test_per_rank_times_match_engine(self):
        spec = SPECS["allreduce/socket-ma"]
        p, nbytes = 8, 262144
        comm = Communicator(p, machine=MACHINE, functional=False)
        spec.resolve()(comm, nbytes)
        res = comm.engine.last_result
        cs = capture_schedule(spec, MACHINE, p, nbytes)
        assert cs.evaluate().rank_times == list(res.times)

    def test_four_socket_machine(self):
        machine = PRESETS["NodeD"]
        spec = SPECS["allreduce/socket-ma"]
        comm = Communicator(8, machine=machine, functional=False)
        ref = spec.resolve()(comm, 65536)
        out = replay_cell(capture_schedule(spec, machine, 8, 65536))
        assert out["time"] == ref.time
        assert out["counters"] == ref.counters


class TestRoundTrip:
    def test_json_round_trip_is_bitwise(self):
        cs = capture_schedule(SPECS["allreduce/rg"], MACHINE, 4, 65536)
        blob = json.dumps(schedule_to_doc(cs))
        cs2 = schedule_from_doc(json.loads(blob))
        a, b = cs.evaluate(), cs2.evaluate()
        assert np.array_equal(a.completion, b.completion)
        assert a.rank_times == b.rank_times

    def test_schema_is_checked(self):
        cs = capture_schedule(SPECS["allreduce/ring"], MACHINE, 2, 4096)
        doc = schedule_to_doc(cs)
        doc["schema"] = "repro-compiled/0"
        with pytest.raises(ScheduleSchemaError) as exc:
            schedule_from_doc(doc)
        # the error names the offending and the supported versions
        assert "repro-compiled/0" in str(exc.value)
        assert "repro-compiled/1" in str(exc.value)

    def test_non_dict_doc_is_a_named_error(self):
        with pytest.raises(ScheduleSchemaError, match="document"):
            schedule_from_doc([1, 2, 3])

    def test_missing_field_is_a_named_error(self):
        cs = capture_schedule(SPECS["allreduce/ring"], MACHINE, 2, 4096)
        doc = schedule_to_doc(cs)
        del doc["indptr"]
        with pytest.raises(ScheduleSchemaError, match="indptr"):
            schedule_from_doc(doc)

    def test_schema_error_is_a_value_error(self):
        # the bench cache path catches ValueError to recapture
        assert issubclass(ScheduleSchemaError, ValueError)

    def test_doc_is_json_safe(self):
        cs = capture_schedule(SPECS["bcast/pipelined"], MACHINE, 4, 65536)
        doc = json.loads(json.dumps(schedule_to_doc(cs)))
        assert doc["schema"] == "repro-compiled/1"
        assert len(doc["kind"]) == len(cs)
        assert len(doc["indptr"]) == len(cs) + 1


class TestEvaluateKnobs:
    @pytest.fixture(scope="class")
    def schedule(self):
        return capture_schedule(SPECS["allreduce/socket-ma"],
                                MACHINE, 4, 65536)

    def test_start_times_shift_is_monotone(self, schedule):
        base = schedule.evaluate()
        skew = [1e-6 * r for r in range(schedule.nranks)]
        shifted = schedule.evaluate(start_times=skew)
        assert shifted.time >= base.time
        assert all(s >= b for s, b in
                   zip(shifted.rank_times, base.rank_times))

    def test_start_times_shape_checked(self, schedule):
        with pytest.raises(ValueError, match="one entry per rank"):
            schedule.evaluate(start_times=[0.0])

    def test_model_durations_bound_engine_times(self, schedule):
        model = schedule.evaluate(dur=schedule.model_durations(MACHINE))
        assert 0.0 < model.time <= schedule.evaluate().time

    def test_dur_shape_checked(self, schedule):
        with pytest.raises(ValueError, match="node count"):
            schedule.evaluate(dur=np.zeros(1))

    def test_completion_matches_captured_t_end(self, schedule):
        # the calibration invariant, directly on the arrays
        assert np.array_equal(schedule.evaluate().completion,
                              schedule.t_end_ref)


class TestBatchedEvaluate:
    """``evaluate_batch`` is a layout change, not a semantic one: every
    row must equal the corresponding single ``evaluate`` call bitwise —
    completion per op, per-rank times and therefore every derived
    counter."""

    B = 8

    def _rows(self, cs, rng):
        dur = np.tile(cs.dur, (self.B, 1))
        dur *= 1.0 + 0.25 * rng.random(dur.shape)  # perturb every op
        st = 1e-6 * rng.random((self.B, cs.nranks))
        return st, dur

    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_batch_rows_equal_single_evaluates(self, name, p):
        cs = capture_schedule(SPECS[name], MACHINE, p, 65536)
        st, dur = self._rows(cs, np.random.default_rng(7))
        batched = cs.evaluate_batch(start_times=st, dur=dur)
        for i in range(self.B):
            single = cs.evaluate(start_times=st[i], dur=dur[i])
            assert np.array_equal(batched.completion[i],
                                  single.completion), (name, p, i)
            assert list(batched.rank_times[i]) == single.rank_times, \
                (name, p, i)
        assert list(batched.times) == \
            [cs.evaluate(start_times=st[i], dur=dur[i]).time
             for i in range(self.B)]

    def test_default_batch_replays_capture(self):
        cs = capture_schedule(SPECS["allreduce/socket-ma"],
                              MACHINE, 4, 65536)
        res = cs.evaluate_batch(batch=3)
        base = cs.evaluate()
        for i in range(3):
            assert np.array_equal(res.completion[i], base.completion)
            assert list(res.rank_times[i]) == base.rank_times

    def test_broadcast_1d_dur_against_2d_start_times(self):
        cs = capture_schedule(SPECS["allreduce/ring"], MACHINE, 4, 65536)
        st = 1e-6 * np.arange(3 * cs.nranks).reshape(3, cs.nranks)
        res = cs.evaluate_batch(start_times=st, dur=cs.dur)
        assert len(res) == 3
        for i in range(3):
            assert list(res.rank_times[i]) == \
                cs.evaluate(start_times=st[i]).rank_times

    def test_inconsistent_batch_sizes_rejected(self):
        cs = capture_schedule(SPECS["allreduce/ring"], MACHINE, 2, 4096)
        st = np.zeros((3, cs.nranks))
        dur = np.tile(cs.dur, (4, 1))
        with pytest.raises(ValueError, match="batch"):
            cs.evaluate_batch(start_times=st, dur=dur)

    def test_bad_batch_rejected(self):
        cs = capture_schedule(SPECS["allreduce/ring"], MACHINE, 2, 4096)
        with pytest.raises(ValueError, match="batch"):
            cs.evaluate_batch(batch=0)


class TestLowerErrors:
    def test_empty_ir_refused(self):
        with pytest.raises(CompileError, match="empty"):
            lower(ScheduleIR(meta={"nranks": 2}))

    def test_pending_sync_refused(self):
        ir = ScheduleIR(meta={"nranks": 2})
        ir.add_node(OpNode(node=0, rank=0, kind="wait", tag="flag",
                           count=1, pending=True))
        with pytest.raises(CompileError, match="deadlocked"):
            lower(ir)

    def test_unknown_kind_refused(self):
        ir = ScheduleIR(meta={"nranks": 1})
        ir.add_node(OpNode(node=0, rank=0, kind="teleport", nbytes=8))
        with pytest.raises(CompileError, match="teleport"):
            lower(ir)


class TestCalibration:
    def test_calibrate_lands_bitwise(self):
        from repro.sim.compiled import _calibrate

        # a case where a + (b - a) != b in IEEE double arithmetic
        a, b = 0.1, 0.30000000000000004
        d = _calibrate(a, b)
        assert a + d == b
        assert math.isclose(d, b - a, rel_tol=1e-12)

    def test_idle_rank_reports_start_clock(self):
        # a one-rank schedule on a two-rank communicator: rank 1 idles
        ir = ScheduleIR(meta={"nranks": 2})
        ir.add_node(OpNode(node=0, rank=0, kind="copy", nbytes=64,
                           t_start=0.0, t_end=1.5e-6))
        cs = lower(ir)
        assert isinstance(cs, CompiledSchedule)
        assert cs.evaluate().rank_times == [1.5e-6, 0.0]
        assert cs.evaluate(start_times=[0.0, 2.0]).rank_times[1] == 2.0
