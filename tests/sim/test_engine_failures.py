"""Engine failure paths: deadlock diagnostics and access errors.

A simulator that fails opaquely is worse than none — these tests pin
the error surface: deadlocks name every blocked rank with the tag or
barrier it is parked on (structured on ``DeadlockError.blocked``, and
as ``blocked`` trace events when tracing), and misaligned buffer
accesses raise immediately instead of corrupting elements.
"""

import pytest

from repro.sim.engine import BlockedInfo, DeadlockError, Engine


class TestDeadlockDiagnostics:
    def test_message_names_rank_tag_and_count(self):
        eng = Engine(3, functional=True)

        def prog(ctx):
            if ctx.rank == 1:
                yield ctx.wait(("step", 4, "chain"), 2)

        with pytest.raises(DeadlockError) as exc:
            eng.run(prog)
        msg = str(exc.value)
        assert "1 rank(s) blocked" in msg
        assert "rank 1" in msg
        assert "('step', 4, 'chain')" in msg
        assert "count=2" in msg

    def test_blocked_is_structured(self):
        eng = Engine(2, functional=True)

        def prog(ctx):
            yield ctx.wait(("t", ctx.rank), 1)

        with pytest.raises(DeadlockError) as exc:
            eng.run(prog)
        blocked = exc.value.blocked
        assert len(blocked) == 2
        assert all(isinstance(b, BlockedInfo) for b in blocked)
        assert [b.rank for b in blocked] == [0, 1]
        assert {b.tag for b in blocked} == {("t", 0), ("t", 1)}
        assert all(b.kind == "wait" and b.have == 0 for b in blocked)

    def test_partial_post_diagnosis_counts_per_poster(self):
        """A wait(tag, 4) holding 2 posts from one rank and 1 from
        another must say exactly what arrived from whom — the
        information that makes partial-post deadlocks diagnosable."""
        eng = Engine(3, functional=True)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.post(("chunk",))
                ctx.post(("chunk",))
            elif ctx.rank == 1:
                ctx.post(("chunk",))
            else:
                yield ctx.wait(("chunk",), 4)

        with pytest.raises(DeadlockError) as exc:
            eng.run(prog)
        (blocked,) = exc.value.blocked
        assert blocked.have == 3 and blocked.count == 4
        assert blocked.posts_by_rank == {0: 2, 1: 1}
        msg = blocked.describe()
        assert "3 post(s) of 4 required" in msg
        assert "rank 0 x2" in msg and "rank 1" in msg
        assert "1 will never arrive" in msg

    def test_barrier_deadlock_names_arrived_and_missing(self):
        eng = Engine(4, functional=True)

        def prog(ctx):
            if ctx.rank in (0, 3):
                yield ctx.barrier()

        with pytest.raises(DeadlockError) as exc:
            eng.run(prog)
        msg = str(exc.value)
        assert "barrier" in msg
        for b in exc.value.blocked:
            assert set(b.arrived) == {0, 3}
            assert set(b.missing) == {1, 2}

    def test_blocked_events_recorded_when_tracing(self):
        eng = Engine(2, functional=True, trace=True)

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.wait(("gone",), 1)

        with pytest.raises(DeadlockError):
            eng.run(prog)
        blocked = [e for e in eng.trace.sync_events()
                   if e.kind == "blocked"]
        assert len(blocked) == 1
        assert blocked[0].rank == 0
        assert blocked[0].tag == ("gone",)
        assert "never arrive" in blocked[0].detail

    def test_no_blocked_events_on_clean_run(self):
        eng = Engine(2, functional=True, trace=True)

        def prog(ctx):
            yield ctx.barrier()

        eng.run(prog)
        assert not [e for e in eng.trace.sync_events()
                    if e.kind == "blocked"]


class TestAccessErrors:
    def test_misaligned_view_access_raises(self):
        eng = Engine(1, functional=True)
        buf = eng.alloc(0, 64, fill=0.0)
        with pytest.raises(ValueError, match="not aligned"):
            buf.view(3, 16).array()

    def test_misaligned_copy_raises_inside_program(self):
        eng = Engine(2, functional=True)
        a = eng.alloc(0, 64, fill=1.0)
        b = eng.alloc(0, 64, fill=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(b.view(4, 8), a.view(4, 8))
            return
            yield

        with pytest.raises(ValueError, match="aligned"):
            eng.run(prog)

    def test_virtual_buffer_array_raises(self):
        eng = Engine(1, functional=False)
        buf = eng.alloc(0, 64)
        with pytest.raises(RuntimeError, match="virtual"):
            buf.view(0, 64).array()
