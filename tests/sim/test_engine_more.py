"""Additional engine coverage: subset runs, start times, determinism,
cross-run isolation and misuse errors."""

import numpy as np
import pytest

from repro.sim.engine import DeadlockError, Engine

from tests.conftest import TINY


class TestSubsetRuns:
    def test_subset_of_ranks(self):
        eng = Engine(6, machine=TINY, functional=True)
        hits = []

        def program(ctx):
            hits.append(ctx.rank)
            yield ctx.barrier(group=[1, 3, 5])

        res = eng.run(program, ranks=[1, 3, 5])
        assert sorted(hits) == [1, 3, 5]
        assert len(res.times) == 3

    def test_subset_contention_uses_subset(self):
        eng = Engine(8, machine=TINY, functional=False)
        buf = eng.alloc(0, 1 << 20)

        def program(ctx):
            if ctx.rank == 0:
                ctx.touch(buf.view())

        t_few = eng.run(program, ranks=[0]).times[0]
        eng.memsys.reset_caches()
        t_many = eng.run(program).times[0]
        assert t_few < t_many  # fewer sharers -> more bandwidth


class TestStartTimes:
    def test_start_times_offset_clocks(self):
        eng = Engine(2, machine=TINY, functional=False)

        def program(ctx):
            ctx.compute(1e-3)

        res = eng.run(program, start_times=[5e-3, 0.0])
        assert res.times[0] == pytest.approx(6e-3)
        assert res.times[1] == pytest.approx(1e-3)

    def test_reset_clocks_false_requires_start_times(self):
        eng = Engine(2, functional=True)
        with pytest.raises(ValueError):
            eng.run(lambda ctx: None, reset_clocks=False)


class TestDeterminism:
    def _run_once(self, schedule_seed):
        eng = Engine(4, machine=TINY, functional=True, seed=9,
                     schedule_seed=schedule_seed)
        a = {r: eng.alloc(r, 512, random=True) for r in range(4)}
        b = {r: eng.alloc(r, 512) for r in range(4)}

        def program(ctx):
            ctx.copy(b[ctx.rank].view(), a[ctx.rank].view())
            yield ctx.barrier()

        res = eng.run(program)
        return res.times, b[0].array().copy()

    def test_same_seed_same_everything(self):
        t1, d1 = self._run_once(42)
        t2, d2 = self._run_once(42)
        assert t1 == t2
        np.testing.assert_array_equal(d1, d2)

    def test_fifo_default_deterministic(self):
        t1, _ = self._run_once(None)
        t2, _ = self._run_once(None)
        assert t1 == t2


class TestCrossRunIsolation:
    def test_posts_do_not_leak_between_runs(self):
        eng = Engine(2, functional=True)

        def poster(ctx):
            ctx.post("flag")
            yield ctx.barrier()

        eng.run(poster)

        def waiter(ctx):
            if ctx.rank == 0:
                yield ctx.wait("flag", count=3)  # stale posts would satisfy

        with pytest.raises(DeadlockError):
            eng.run(waiter)

    def test_barrier_sequence_reset(self):
        eng = Engine(3, functional=True)

        def program(ctx):
            yield ctx.barrier()
            yield ctx.barrier()

        eng.run(program)
        eng.run(program)  # must not mis-match against the first run


class TestMisuse:
    def test_windowed_shm_pipeline_needs_consumer(self):
        from repro.collectives.common import make_env
        from repro.collectives.ma import MA_ALLREDUCE, ma_pipeline

        eng = Engine(4, functional=True)
        env = make_env(MA_ALLREDUCE, engine=eng, s=1024, imax=128)

        def program(ctx):
            yield from ma_pipeline(ctx, env, range(4), layout="window",
                                   final="shm", round_consumer=None)

        with pytest.raises(ValueError, match="round_consumer"):
            eng.run(program)

    def test_bad_pipeline_modes(self):
        from repro.collectives.common import make_env
        from repro.collectives.ma import MA_ALLREDUCE, ma_pipeline

        eng = Engine(4, functional=True)
        env = make_env(MA_ALLREDUCE, engine=eng, s=1024, imax=128)

        for kw in ({"layout": "ring"}, {"final": "bcast"}):
            def program(ctx, kw=kw):
                yield from ma_pipeline(ctx, env, range(4), **kw)

            with pytest.raises(ValueError):
                eng.run(program)


class TestTracingNeutrality:
    def test_trace_does_not_change_timing(self):
        from repro.collectives.common import run_reduce_collective
        from repro.collectives.ma import MA_ALLREDUCE

        times = {}
        for trace in (False, True):
            eng = Engine(4, machine=TINY, functional=False, trace=trace)
            times[trace] = run_reduce_collective(
                MA_ALLREDUCE, eng, 8192, imax=512
            ).time
        assert times[False] == times[True]


class TestSpans:
    def test_span_records_rank_clock_interval(self):
        eng = Engine(2, machine=TINY, functional=False, trace=True)

        def program(ctx):
            buf = eng.alloc(ctx.rank, 4096)
            with ctx.span("work"):
                ctx.copy(buf.view(0, 2048), buf.view(2048, 2048))
            return
            yield

        eng.run(program)
        spans = eng.trace.spans
        assert len(spans) == 2
        for s in spans:
            assert s.name == "work"
            assert s.t_end > s.t_start == 0.0

    def test_spans_nest_and_may_enclose_syncs(self):
        eng = Engine(2, machine=TINY, functional=True, trace=True)

        def program(ctx):
            with ctx.span("outer"):
                with ctx.span("inner"):
                    ctx.post(("t", ctx.rank))
                yield ctx.wait(("t", 1 - ctx.rank))

        eng.run(program)
        by_rank = {}
        for s in eng.trace.spans:
            by_rank.setdefault(s.rank, []).append(s)
        for spans in by_rank.values():
            names = {s.name for s in spans}
            assert names == {"outer", "inner"}
            inner = next(s for s in spans if s.name == "inner")
            outer = next(s for s in spans if s.name == "outer")
            assert outer.t_start <= inner.t_start
            assert inner.t_end <= outer.t_end

    def test_span_is_shared_noop_singleton_when_untraced(self):
        eng = Engine(2, machine=TINY, functional=False, trace=False)
        seen = []

        def program(ctx):
            span = ctx.span("work")
            seen.append(span)
            with span:
                pass
            return
            yield

        eng.run(program)
        # zero-overhead-when-off: every rank gets the same singleton,
        # no per-call allocation on the hot path
        assert seen[0] is seen[1]

    def test_run_result_slices_spans_per_run(self):
        eng = Engine(2, machine=TINY, functional=False, trace=True)

        def program(ctx):
            with ctx.span("phase"):
                pass
            return
            yield

        r1 = eng.run(program)
        r2 = eng.run(program)
        assert len(r1.trace.spans) == 4  # cumulative across runs
        assert len(r2.run_spans) == 2    # this run's slice only
        assert r2.first_span == 2
