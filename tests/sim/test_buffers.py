"""Buffer and view tests: bounds, alignment, functional/virtual modes."""

import numpy as np
import pytest

from repro.sim.buffers import Buffer, BufView, SharedBuffer, alloc, alloc_shared


class TestBuffer:
    def test_unique_ids(self):
        a, b = Buffer(64), Buffer(64)
        assert a.buf_id != b.buf_id

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Buffer(0)

    def test_data_size_must_match(self):
        with pytest.raises(ValueError):
            Buffer(64, data=np.zeros(4))  # 32 bytes != 64

    def test_virtual_buffer_has_no_array(self):
        b = Buffer(64)
        with pytest.raises(RuntimeError):
            b.array()

    def test_array_view_is_shared_memory(self):
        b = Buffer(64, data=np.zeros(8))
        b.array(0, 32)[:] = 7.0
        assert b.data[3] == 7.0
        assert b.data[4] == 0.0

    def test_alignment_enforced(self):
        b = Buffer(64, data=np.zeros(8))
        with pytest.raises(ValueError):
            b.array(3, 8)
        with pytest.raises(ValueError):
            b.array(0, 7)


class TestBufView:
    def test_bounds_checked(self):
        b = Buffer(64)
        with pytest.raises(ValueError):
            BufView(b, 32, 64)
        with pytest.raises(ValueError):
            BufView(b, -1, 8)

    def test_sub_view(self):
        b = Buffer(64, data=np.arange(8.0))
        v = b.view(16, 32).sub(8, 16)
        np.testing.assert_array_equal(v.array(), [3.0, 4.0])

    def test_is_virtual(self):
        assert Buffer(8).view().is_virtual
        assert not Buffer(8, data=np.zeros(1)).view().is_virtual

    def test_sub_bounds_checked_unconditionally(self):
        """sub() must not escape its view — even though the escaped
        range may still lie inside the underlying buffer."""
        v = Buffer(64).view(16, 32)
        with pytest.raises(ValueError, match="escapes view"):
            v.sub(-8, 8)  # would reach bytes [8, 16) of the buffer
        with pytest.raises(ValueError, match="escapes view"):
            v.sub(24, 16)  # would reach bytes [40, 56) of the buffer
        with pytest.raises(ValueError):
            v.sub(0, -8)
        assert v.sub(24, 8).off == 40  # flush to the view's end is fine
        assert v.sub(32, 0).nbytes == 0  # empty tail slice is fine


class TestAllocHelpers:
    def test_functional_fill(self):
        b = alloc(64, functional=True, fill=3.5)
        assert np.all(b.array() == 3.5)

    def test_functional_random_deterministic(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        a = alloc(64, functional=True, rng=rng1)
        b = alloc(64, functional=True, rng=rng2)
        np.testing.assert_array_equal(a.array(), b.array())

    def test_virtual_alloc(self):
        b = alloc(64, functional=False)
        assert b.data is None

    def test_shared_zeroed(self):
        s = alloc_shared(64, functional=True)
        assert isinstance(s, SharedBuffer)
        assert np.all(s.array() == 0.0)
        assert s.home_socket is None  # first-touch

    def test_unaligned_functional_alloc_rejected(self):
        with pytest.raises(ValueError):
            alloc(63, functional=True)

    def test_integer_dtype(self):
        b = alloc(64, functional=True, dtype=np.int64, fill=4)
        assert b.array().dtype == np.int64
        assert np.all(b.array() == 4)
