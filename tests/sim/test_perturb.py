"""Perturbation ensembles: seeded determinism, chunk invariance, model
registry and the statistical sanity of the tail summaries."""

import numpy as np
import pytest

from repro.bench.compiled import capture_schedule
from repro.bench.spec import reduce_spec
from repro.machine.spec import PRESETS
from repro.sim.perturb import (
    MODELS,
    PerturbStats,
    run_ensemble,
    sample_ensemble,
)

MACHINE = PRESETS["NodeA"]


@pytest.fixture(scope="module")
def schedule():
    spec = reduce_spec("socket-ma", "allreduce", "adaptive")
    return capture_schedule(spec, MACHINE, 4, 262144)


class TestSampling:
    def test_shapes(self, schedule):
        ens = sample_ensemble(schedule, 16, seed=1)
        assert ens.dur.shape == (16, len(schedule))
        assert ens.start_times.shape == (16, schedule.nranks)
        assert len(ens) == 16

    def test_same_seed_same_ensemble(self, schedule):
        a = sample_ensemble(schedule, 8, seed=42)
        b = sample_ensemble(schedule, 8, seed=42)
        assert np.array_equal(a.dur, b.dur)
        assert np.array_equal(a.start_times, b.start_times)

    def test_different_seed_differs(self, schedule):
        a = sample_ensemble(schedule, 8, seed=42)
        b = sample_ensemble(schedule, 8, seed=43)
        assert not np.array_equal(a.dur, b.dur)

    def test_noise_only_touches_busy_ops(self, schedule):
        # additive models only inflate; freq-skew is two-sided (a rank
        # can run *faster* than nominal); sync ops always stay put
        for name in ("os-noise", "straggler", "arrival"):
            ens = sample_ensemble(schedule, 4, seed=5, model=name)
            assert np.all(ens.dur >= schedule.dur[None, :]), name
        for name in MODELS:
            ens = sample_ensemble(schedule, 4, seed=5, model=name)
            sync = schedule.rank < 0
            if sync.any():
                assert np.array_equal(
                    ens.dur[:, sync],
                    np.tile(schedule.dur[sync], (4, 1))), name

    def test_unknown_model_lists_choices(self, schedule):
        with pytest.raises(ValueError, match="os-noise"):
            sample_ensemble(schedule, 4, seed=1, model="gremlins")

    def test_bad_n_rejected(self, schedule):
        with pytest.raises(ValueError, match=">= 1"):
            sample_ensemble(schedule, 0, seed=1)

    def test_dur_override_shape_checked(self, schedule):
        with pytest.raises(ValueError, match="node count"):
            sample_ensemble(schedule, 4, seed=1, dur=np.zeros(3))


class TestRunEnsemble:
    def test_deterministic(self, schedule):
        a = run_ensemble(schedule, 32, seed=7)
        b = run_ensemble(schedule, 32, seed=7)
        assert a.to_dict() == b.to_dict()

    def test_chunking_does_not_change_bits(self, schedule):
        a = run_ensemble(schedule, 32, seed=7, chunk=32)
        b = run_ensemble(schedule, 32, seed=7, chunk=5)
        c = run_ensemble(schedule, 32, seed=7, chunk=1)
        assert a.to_dict() == b.to_dict() == c.to_dict()

    def test_percentiles_ordered_and_above_base(self, schedule):
        st = run_ensemble(schedule, 64, seed=3)
        assert st.base == schedule.evaluate().time
        assert st.base <= st.p50 <= st.p99 <= st.p999 <= st.worst
        assert len(st.rank_p99) == schedule.nranks

    def test_stats_round_trip_json_safe(self, schedule):
        import json

        st = run_ensemble(schedule, 8, seed=1, model="os-noise")
        doc = json.loads(json.dumps(st.to_dict()))
        assert doc["model"] == "os-noise"
        assert doc["n"] == 8

    def test_dur_override_shifts_base(self, schedule):
        half = schedule.dur * 0.5
        st = run_ensemble(schedule, 8, seed=1, dur=half)
        assert st.base == schedule.evaluate(dur=half).time
        assert st.base < schedule.evaluate().time

    def test_bad_chunk_rejected(self, schedule):
        with pytest.raises(ValueError, match="chunk"):
            run_ensemble(schedule, 4, seed=1, chunk=0)

    def test_stats_fields(self):
        st = PerturbStats(model="mixed", n=1, seed=0, base=1.0, p50=1.0,
                          p99=1.0, p999=1.0, mean=1.0, worst=1.0)
        assert st.to_dict()["rank_p99"] == []
