"""Timeline rendering tests."""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE_SCATTER
from repro.sim.engine import Engine
from repro.sim.timeline import (
    critical_rank,
    phase_summary,
    rank_stats,
    render_timeline,
)
from repro.sim.trace import OpRecord, Trace

from tests.conftest import TINY


def traced_run(p=4, s=4096):
    eng = Engine(p, machine=TINY, functional=False, trace=True)
    run_reduce_collective(MA_REDUCE_SCATTER, eng, s, imax=512)
    return eng.trace


class TestRenderTimeline:
    def test_renders_all_ranks(self):
        text = render_timeline(traced_run(), width=40)
        for r in range(4):
            assert f"rank   {r}" in text

    def test_contains_copy_and_reduce_glyphs(self):
        text = render_timeline(traced_run(), width=60)
        assert "c" in text and "r" in text

    def test_rank_filter(self):
        text = render_timeline(traced_run(), width=40, ranks=[1, 2])
        assert "rank   1" in text and "rank   3" not in text

    def test_empty_trace(self):
        assert render_timeline(Trace()) == "(empty trace)"

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_timeline(traced_run(), width=4)

    def test_utilization_column(self):
        text = render_timeline(traced_run(), width=40)
        assert "% busy" in text

    def test_legend_line(self):
        text = render_timeline(traced_run(), width=40)
        assert "glyphs:" in text and "= barrier" in text

    def test_sync_records_render_as_stall_segments(self):
        # MA allreduce has flag waits and barrier phases; both must be
        # visible in the chart, not silently dropped
        eng = Engine(4, machine=TINY, functional=False, trace=True)
        run_reduce_collective(MA_ALLREDUCE, eng, 4096, imax=512)
        text = render_timeline(eng.trace, width=60)
        assert "w" in text and "=" in text

    def test_touch_records_have_a_glyph(self):
        t = Trace()
        t.add(OpRecord(rank=0, kind="touch", nbytes=64, nt=None,
                       t_start=0.0, t_end=1e-6))
        text = render_timeline(t, width=16, show_utilization=False)
        assert "t" in text.splitlines()[-1]

    def test_unknown_kind_warns_once_and_degrades(self):
        t = Trace()
        for i in range(3):
            t.add(OpRecord(rank=0, kind="teleport", nbytes=64,
                           t_start=i * 1e-6, t_end=(i + 1) * 1e-6))
        with pytest.warns(RuntimeWarning, match="teleport") as caught:
            text = render_timeline(t, width=16, show_utilization=False)
        assert "?" in text
        assert len(caught) == 1  # one warning per render, not per cell

    def test_known_kinds_do_not_warn(self, recwarn):
        render_timeline(traced_run(), width=40)
        assert not [w for w in recwarn
                    if issubclass(w.category, RuntimeWarning)]


class TestStats:
    def test_rank_stats_bounds(self):
        trace = traced_run()
        for r in range(4):
            st = rank_stats(trace, r)
            assert 0.0 <= st.utilization <= 1.0
            assert st.busy <= st.span

    def test_stall_excluded_from_busy(self):
        eng = Engine(4, machine=TINY, functional=False, trace=True)
        run_reduce_collective(MA_ALLREDUCE, eng, 4096, imax=512)
        for r in range(4):
            st = rank_stats(eng.trace, r)
            assert st.stall > 0  # waits/barriers are accounted...
            assert st.busy + st.stall <= st.span + 1e-12  # ...separately

    def test_critical_rank_exists(self):
        assert critical_rank(traced_run()) in range(4)

    def test_critical_rank_rejects_empty(self):
        with pytest.raises(ValueError):
            critical_rank(Trace())

    def test_phase_summary_conserves_bytes(self):
        trace = traced_run()
        phases = phase_summary(trace, buckets=4)
        assert len(phases) == 4
        total_copy = sum(c for _, _, c, _ in phases)
        total_red = sum(r for _, _, _, r in phases)
        assert total_copy == trace.copy_bytes()
        assert total_red == trace.reduce_bytes()

    def test_phase_summary_empty(self):
        assert phase_summary(Trace()) == []


class TestTimelineProperties:
    from hypothesis import given, settings, strategies as st

    @given(st.lists(
        st.tuples(
            st.integers(0, 5),
            st.sampled_from(["copy", "reduce_acc", "compute"]),
            st.booleans(),
            st.floats(0, 1e-3, allow_nan=False),
            st.floats(1e-9, 1e-3, allow_nan=False),
        ),
        min_size=1, max_size=50,
    ))
    @settings(max_examples=40, deadline=None)
    def test_render_robust_on_random_traces(self, recs):
        t = Trace()
        for rank, kind, nt, t0, dt in recs:
            t.add(OpRecord(rank=rank, kind=kind, nbytes=64, nt=nt,
                           t_start=t0, t_end=t0 + dt))
        text = render_timeline(t, width=32)
        assert "timeline:" in text
        for rank in {r.rank for r in t}:
            st_ = rank_stats(t, rank)
            # overlapping records can exceed the span on synthetic
            # traces; real engine traces are per-rank sequential
            assert st_.busy >= 0 and st_.span > 0
