"""Timeline rendering tests."""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_REDUCE_SCATTER
from repro.sim.engine import Engine
from repro.sim.timeline import (
    critical_rank,
    phase_summary,
    rank_stats,
    render_timeline,
)
from repro.sim.trace import OpRecord, Trace

from tests.conftest import TINY


def traced_run(p=4, s=4096):
    eng = Engine(p, machine=TINY, functional=False, trace=True)
    run_reduce_collective(MA_REDUCE_SCATTER, eng, s, imax=512)
    return eng.trace


class TestRenderTimeline:
    def test_renders_all_ranks(self):
        text = render_timeline(traced_run(), width=40)
        for r in range(4):
            assert f"rank   {r}" in text

    def test_contains_copy_and_reduce_glyphs(self):
        text = render_timeline(traced_run(), width=60)
        assert "c" in text and "r" in text

    def test_rank_filter(self):
        text = render_timeline(traced_run(), width=40, ranks=[1, 2])
        assert "rank   1" in text and "rank   3" not in text

    def test_empty_trace(self):
        assert render_timeline(Trace()) == "(empty trace)"

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_timeline(traced_run(), width=4)

    def test_utilization_column(self):
        text = render_timeline(traced_run(), width=40)
        assert "% busy" in text


class TestStats:
    def test_rank_stats_bounds(self):
        trace = traced_run()
        for r in range(4):
            st = rank_stats(trace, r)
            assert 0.0 <= st.utilization <= 1.0
            assert st.busy <= st.span

    def test_critical_rank_exists(self):
        assert critical_rank(traced_run()) in range(4)

    def test_critical_rank_rejects_empty(self):
        with pytest.raises(ValueError):
            critical_rank(Trace())

    def test_phase_summary_conserves_bytes(self):
        trace = traced_run()
        phases = phase_summary(trace, buckets=4)
        assert len(phases) == 4
        total_copy = sum(c for _, _, c, _ in phases)
        total_red = sum(r for _, _, _, r in phases)
        assert total_copy == trace.copy_bytes()
        assert total_red == trace.reduce_bytes()

    def test_phase_summary_empty(self):
        assert phase_summary(Trace()) == []


class TestTimelineProperties:
    from hypothesis import given, settings, strategies as st

    @given(st.lists(
        st.tuples(
            st.integers(0, 5),
            st.sampled_from(["copy", "reduce_acc", "compute"]),
            st.booleans(),
            st.floats(0, 1e-3, allow_nan=False),
            st.floats(1e-9, 1e-3, allow_nan=False),
        ),
        min_size=1, max_size=50,
    ))
    @settings(max_examples=40, deadline=None)
    def test_render_robust_on_random_traces(self, recs):
        t = Trace()
        for rank, kind, nt, t0, dt in recs:
            t.add(OpRecord(rank=rank, kind=kind, nbytes=64, nt=nt,
                           t_start=t0, t_end=t0 + dt))
        text = render_timeline(t, width=32)
        assert "timeline:" in text
        for rank in {r.rank for r in t}:
            st_ = rank_stats(t, rank)
            # overlapping records can exceed the span on synthetic
            # traces; real engine traces are per-rank sequential
            assert st_.busy >= 0 and st_.span > 0
