"""Engine tests: scheduling, synchronization semantics, clocks,
deadlock detection and functional data operations."""

import numpy as np
import pytest

from repro.sim.engine import DeadlockError, Engine

from tests.conftest import TINY


class TestBasicExecution:
    def test_plain_function_program(self, engine4):
        bufs = {r: engine4.alloc(r, 64, fill=float(r)) for r in range(4)}
        dsts = {r: engine4.alloc(r, 64, fill=0.0) for r in range(4)}

        def program(ctx):
            ctx.copy(dsts[ctx.rank].view(), bufs[ctx.rank].view())

        res = engine4.run(program)
        for r in range(4):
            assert np.all(dsts[r].array() == float(r))
        assert res.sync_count == 0

    def test_generator_program(self, engine4):
        order = []

        def program(ctx):
            order.append(("pre", ctx.rank))
            yield ctx.barrier()
            order.append(("post", ctx.rank))

        engine4.run(program)
        pres = [i for i, (k, _) in enumerate(order) if k == "pre"]
        posts = [i for i, (k, _) in enumerate(order) if k == "post"]
        assert max(pres) < min(posts)

    def test_rejects_bad_nranks(self):
        with pytest.raises(ValueError):
            Engine(0)


class TestPostWait:
    def test_signal_chain(self, engine4):
        log = []

        def program(ctx):
            if ctx.rank > 0:
                yield ctx.wait(("t", ctx.rank - 1))
            log.append(ctx.rank)
            ctx.post(("t", ctx.rank))

        engine4.run(program)
        assert log == [0, 1, 2, 3]

    def test_wait_count(self, engine4):
        log = []

        def program(ctx):
            ctx.post(("ready",))
            if ctx.rank == 0:
                yield ctx.wait(("ready",), count=4)
                log.append("released")

        engine4.run(program)
        assert log == ["released"]

    def test_nonconsuming_waits(self, engine4):
        """One post can release many waiters (broadcast signalling)."""
        released = []

        def program(ctx):
            if ctx.rank == 0:
                ctx.post(("go",))
            else:
                yield ctx.wait(("go",))
                released.append(ctx.rank)

        engine4.run(program)
        assert sorted(released) == [1, 2, 3]

    def test_wait_rejects_bad_count(self, engine4):
        def program(ctx):
            yield ctx.wait("x", count=0)

        with pytest.raises(ValueError):
            engine4.run(program)


class TestBarriers:
    def test_subgroup_barrier(self, engine4):
        def program(ctx):
            if ctx.rank < 2:
                yield ctx.barrier(group=[0, 1])

        engine4.run(program)  # must not deadlock

    def test_barrier_requires_membership(self, engine4):
        def program(ctx):
            yield ctx.barrier(group=[0, 1])

        with pytest.raises(ValueError):
            engine4.run(program)

    def test_repeated_barriers_match_by_arrival(self, engine4):
        counter = {"n": 0}

        def program(ctx):
            for _ in range(5):
                yield ctx.barrier()
                counter["n"] += 1

        engine4.run(program)
        assert counter["n"] == 20


class TestClocks:
    def test_barrier_reconciles_clocks(self):
        eng = Engine(4, machine=TINY, functional=False)

        def program(ctx):
            ctx.compute(1e-3 * (ctx.rank + 1))
            yield ctx.barrier()

        res = eng.run(program)
        # all ranks end at the slowest + barrier cost
        assert max(res.times) - min(res.times) < 1e-12
        assert res.time > 4e-3

    def test_wait_inherits_poster_clock(self):
        eng = Engine(2, machine=TINY, functional=False)

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(5e-3)
                ctx.post("x")
            else:
                yield ctx.wait("x")

        res = eng.run(program)
        assert res.times[1] >= 5e-3

    def test_compute_rejects_negative(self, engine4):
        def program(ctx):
            ctx.compute(-1.0)

        with pytest.raises(ValueError):
            engine4.run(program)

    def test_sync_latency_charged(self):
        eng = Engine(2, machine=TINY, functional=False)

        def program(ctx):
            if ctx.rank == 0:
                ctx.post("x")
            else:
                yield ctx.wait("x")

        res = eng.run(program)
        assert res.times[1] >= TINY.sync_latency_intra


class TestDeadlockDetection:
    def test_unmatched_wait_raises(self, engine4):
        def program(ctx):
            if ctx.rank == 0:
                yield ctx.wait(("never",))

        with pytest.raises(DeadlockError, match="never"):
            engine4.run(program)

    def test_partial_barrier_raises(self, engine4):
        def program(ctx):
            if ctx.rank < 3:
                yield ctx.barrier()

        with pytest.raises(DeadlockError, match="barrier"):
            engine4.run(program)


class TestDataOps:
    def test_copy_size_mismatch_raises(self, engine4):
        a = engine4.alloc(0, 64)
        b = engine4.alloc(0, 128)

        def program(ctx):
            if ctx.rank == 0:
                ctx.copy(b.view(), a.view())

        with pytest.raises(ValueError):
            engine4.run(program)

    def test_reduce_ops(self, engine4):
        a = engine4.alloc(0, 64, fill=2.0)
        b = engine4.alloc(0, 64, fill=3.0)
        c = engine4.alloc(0, 64, fill=0.0)

        def program(ctx):
            if ctx.rank == 0:
                ctx.reduce_out(c.view(), a.view(), b.view(), op="max")
                ctx.reduce_acc(c.view(), a.view(), op="sum")

        engine4.run(program)
        assert np.all(c.array() == 5.0)

    def test_all_reduce_ops_supported(self, engine4):
        results = {}
        a = engine4.alloc(0, 64, fill=2.0)
        b = engine4.alloc(0, 64, fill=3.0)

        for op, want in (("sum", 5.0), ("prod", 6.0), ("max", 3.0),
                         ("min", 2.0)):
            c = engine4.alloc(0, 64, fill=0.0)

            def program(ctx, c=c, op=op):
                if ctx.rank == 0:
                    ctx.reduce_out(c.view(), a.view(), b.view(), op=op)

            engine4.run(program)
            results[op] = c.array()[0]
            assert results[op] == want

    def test_trace_records_operations(self):
        eng = Engine(2, functional=True, trace=True)
        a = eng.alloc(0, 64, fill=1.0)
        b = eng.alloc(0, 64)

        def program(ctx):
            if ctx.rank == 0:
                ctx.copy(b.view(), a.view(), nt=True)
            yield ctx.barrier()

        eng.run(program)
        copies = eng.trace.by_kind("copy")
        assert len(copies) == 1
        assert copies[0].nt is True
        assert copies[0].nbytes == 64

    def test_timing_mode_keeps_clock_monotone(self):
        eng = Engine(2, machine=TINY, functional=False)
        a = eng.alloc(0, 1024)
        b = eng.alloc(0, 1024)

        def program(ctx):
            if ctx.rank == 0:
                ctx.copy(b.view(), a.view())

        res = eng.run(program)
        assert res.times[0] > 0.0
        assert res.times[1] == 0.0

    def test_touch_charges_load(self):
        eng = Engine(1, machine=TINY, functional=False)
        a = eng.alloc(0, 64 * 1024)

        def program(ctx):
            ctx.touch(a.view())

        res = eng.run(program)
        assert res.traffic.logical_load == 64 * 1024
        assert res.traffic.logical_store == 0


class TestLightTracing:
    """``trace_accesses=False`` — the compiled-capture fast path —
    must drop only the AccessEvent stream, never observation-free
    structure (op records, spans, sync events) nor the simulation
    itself (clocks, traffic, functional results)."""

    def _run(self, **kw):
        from repro.collectives.common import run_reduce_collective
        from repro.collectives.ma import MA_ALLREDUCE

        eng = Engine(4, machine=TINY, functional=True, seed=7,
                     trace=True, **kw)
        res = run_reduce_collective(MA_ALLREDUCE, eng, 2048, imax=512)
        return eng, res

    def test_drops_access_events_only(self):
        full_eng, full = self._run()
        light_eng, light = self._run(trace_accesses=False)

        assert full_eng.trace.accesses(), "full tracing lost accesses"
        assert light_eng.trace.accesses() == []

        # everything else survives, byte-for-byte
        assert len(light_eng.trace.records) == len(full_eng.trace.records)
        assert ([(r.rank, r.kind, r.nbytes, r.nt, r.t_start, r.t_end)
                 for r in light_eng.trace.records] ==
                [(r.rank, r.kind, r.nbytes, r.nt, r.t_start, r.t_end)
                 for r in full_eng.trace.records])
        assert len(light_eng.trace.spans) == len(full_eng.trace.spans)
        assert ([(e.rank, e.kind, e.tag)
                 for e in light_eng.trace.sync_events()] ==
                [(e.rank, e.kind, e.tag)
                 for e in full_eng.trace.sync_events()])

    def test_tracing_only_observes(self):
        _, full = self._run()
        _, light = self._run(trace_accesses=False)
        assert light.times == full.times
        assert light.traffic == full.traffic
