"""Simulated-memory sanitizer: shadow-state checks at access time."""

import pytest

from repro.sim.buffers import SanitizerError
from repro.sim.engine import Engine


def _engines():
    return Engine(2, functional=True, trace=True, sanitize=True)


class TestUninitializedRead:
    def test_read_of_untouched_shared_memory_flagged(self):
        eng = _engines()
        shm = eng.alloc_shared(64)
        dst = eng.alloc(0, 64, fill=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(dst.view(), shm.view())  # nobody wrote shm

        with pytest.raises(SanitizerError) as exc:
            eng.run(prog, ranks=[0])
        assert exc.value.kind == "uninitialized-read"
        assert exc.value.buf_name == shm.name

    def test_read_after_write_is_clean(self):
        eng = _engines()
        shm = eng.alloc_shared(64)
        src = eng.alloc(0, 64, fill=2.0)
        dst = eng.alloc(1, 64, fill=0.0)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(), src.view())
                ctx.post(("done",))
            else:
                yield ctx.wait(("done",))
                ctx.copy(dst.view(), shm.view())

        eng.run(prog)  # no error

    def test_partial_write_still_flags_remaining_bytes(self):
        eng = _engines()
        shm = eng.alloc_shared(128)
        src = eng.alloc(0, 64, fill=1.0)
        dst = eng.alloc(0, 128, fill=0.0)

        def prog(ctx):
            ctx.copy(shm.view(0, 64), src.view())  # low half only
            ctx.copy(dst.view(), shm.view())       # reads all 128

        with pytest.raises(SanitizerError) as exc:
            eng.run(prog, ranks=[0])
        assert exc.value.kind == "uninitialized-read"
        assert exc.value.lo == 0 and exc.value.hi == 128

    def test_fill_and_random_allocs_are_initialized(self):
        eng = _engines()
        a = eng.alloc(0, 64, fill=1.5)
        b = eng.alloc(0, 64, random=True)
        out = eng.alloc(0, 64, fill=0.0)

        def prog(ctx):
            ctx.reduce_out(out.view(), a.view(), b.view())

        eng.run(prog, ranks=[0])


class TestOverlappingWrite:
    def test_unsynchronized_writes_same_epoch_flagged(self):
        eng = _engines()
        shm = eng.alloc_shared(64)
        srcs = [eng.alloc(r, 64, fill=float(r)) for r in range(2)]

        def prog(ctx):
            ctx.copy(shm.view(), srcs[ctx.rank].view())

        with pytest.raises(SanitizerError) as exc:
            eng.run(prog)
        assert exc.value.kind == "overlapping-write"
        assert exc.value.other_rank in (0, 1)

    def test_post_wait_separated_writes_are_clean(self):
        eng = _engines()
        shm = eng.alloc_shared(64)
        srcs = [eng.alloc(r, 64, fill=float(r)) for r in range(2)]

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(), srcs[0].view())
                ctx.post(("turn",))
            else:
                yield ctx.wait(("turn",))
                ctx.copy(shm.view(), srcs[1].view())

        eng.run(prog)

    def test_barrier_separated_writes_are_clean(self):
        eng = _engines()
        shm = eng.alloc_shared(64)
        srcs = [eng.alloc(r, 64, fill=float(r)) for r in range(2)]

        def prog(ctx):
            if ctx.rank == 0:
                ctx.copy(shm.view(), srcs[0].view())
            yield ctx.barrier((0, 1))
            if ctx.rank == 1:
                ctx.copy(shm.view(), srcs[1].view())

        eng.run(prog)

    def test_disjoint_writes_same_epoch_are_clean(self):
        eng = _engines()
        shm = eng.alloc_shared(128)
        srcs = [eng.alloc(r, 64, fill=float(r)) for r in range(2)]

        def prog(ctx):
            ctx.copy(shm.view(ctx.rank * 64, 64), srcs[ctx.rank].view())

        eng.run(prog)

    def test_same_rank_rewrites_are_clean(self):
        eng = _engines()
        shm = eng.alloc_shared(64)
        src = eng.alloc(0, 64, fill=1.0)

        def prog(ctx):
            ctx.copy(shm.view(), src.view())
            ctx.copy(shm.view(), src.view())

        eng.run(prog, ranks=[0])


class TestSanitizerOffByDefault:
    def test_no_shadow_without_sanitize(self):
        eng = Engine(2, functional=True)
        shm = eng.alloc_shared(64)
        dst = eng.alloc(0, 64, fill=0.0)
        assert shm.shadow is None

        def prog(ctx):
            ctx.copy(dst.view(), shm.view())  # uninit read: not flagged

        eng.run(prog, ranks=[0])
